"""Persistent service workers: claim → execute → store, forever.

A worker is a long-running process bound to a spool directory and a shared
:class:`~repro.service.store.IndexedResultStore`.  Its loop is the whole
contract:

1. heartbeat (touch ``workers/<id>.alive`` — the scheduler's liveness
   signal),
2. atomically claim one pending job from the spool,
3. skip execution if the result already landed (another worker, an earlier
   attempt, a warm cache — one indexed probe, results are idempotent),
4. execute, store the result (file + index row), release the claim,
5. report execution errors to the spool instead of dying — a worker
   outlives any individual job failure; only a kill/crash takes it down,
   and then the stale heartbeat plus the left-behind claim are exactly
   what the scheduler's dead-worker sweep looks for.

:class:`WorkerPool` manages a set of such workers as local child
processes; ``python -m repro serve`` is its CLI face.  Nothing requires
the pool, though — any process on any machine that can see the spool
directory can run :func:`worker_main` and join the service.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
from pathlib import Path
from typing import List, Optional, Union

from repro.service.spool import Spool
from repro.service.store import IndexedResultStore
from repro.telemetry import telemetry_for
from repro.utils.logging import get_logger

__all__ = ["worker_main", "WorkerPool", "DEFAULT_POLL_INTERVAL"]

_LOGGER = get_logger("service.worker")

#: Seconds a worker sleeps between queue polls when idle.
DEFAULT_POLL_INTERVAL = 0.05

#: Seconds between ``worker.heartbeat`` trace events.  The liveness *file*
#: is touched every poll; the event is a rate-limited trace breadcrumb.
_HEARTBEAT_EVENT_INTERVAL = 1.0


def _execute_traced(job, telemetry):
    """Execute ``job``; returns ``(result, phase_payload_or_None)``.

    With telemetry enabled, round-engine :class:`SimulationJob`\\ s run
    through :func:`~repro.sim.engine.profiled_simulation` so the execute
    span carries the engine's per-phase wall-clock decomposition.  The
    profiled run is bit-identical to ``job.execute()`` (profiling only
    times; the engine is deterministic given the seed), so cached results
    and fingerprints are unaffected.  Anything that cannot take the
    profiled path — echo/test jobs, swarm jobs, an engine without profile
    hooks — falls back to plain execution; only *construction* failures
    trigger the fallback, so genuine execution errors still propagate.
    """
    if not telemetry.enabled:
        return job.execute(), None
    try:
        from repro.sim.engine import profiled_simulation
        from repro.sim.profiling import phases_payload, profile_seconds_of

        simulation = profiled_simulation(
            job.config,
            list(job.behaviors),
            groups=list(job.groups) if job.groups is not None else None,
            seed=job.seed,
        )
    except (AttributeError, TypeError, ValueError):
        return job.execute(), None
    result = simulation.run()
    payload = phases_payload(
        profile_seconds_of(simulation), rounds=result.rounds_executed
    )
    return result, payload


def worker_main(
    spool_root: Union[str, Path],
    cache_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    max_idle: Optional[float] = None,
    telemetry_dir: Union[str, Path, None] = None,
) -> int:
    """Run one worker until the stop sentinel appears (or idle expiry).

    Returns the number of jobs this worker executed.  ``max_idle`` bounds
    how long the worker lingers with an empty queue — ``None`` means "serve
    forever" (the ``repro serve`` default).  ``telemetry_dir`` enables
    structured tracing + metrics (see :mod:`repro.telemetry`); the worker
    is its own writer, so a SIGKILL costs at most one torn trace line.
    """
    worker_id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    telemetry = telemetry_for(telemetry_dir, writer=worker_id)
    spool = Spool(spool_root, telemetry=telemetry)
    store = IndexedResultStore(cache_dir)
    store.metrics = telemetry.metrics
    spool.register_worker(worker_id)
    telemetry.emit("worker.start", worker=worker_id, ppid=os.getppid())
    stop_reason = "stop-sentinel"
    executed = 0
    idle_since = time.time()
    last_heartbeat_event = 0.0
    try:
        while True:
            spool.heartbeat(worker_id)
            now = time.monotonic()
            if now - last_heartbeat_event >= _HEARTBEAT_EVENT_INTERVAL:
                last_heartbeat_event = now
                telemetry.emit(
                    "worker.heartbeat", worker=worker_id, executed=executed
                )
            if spool.stop_requested():
                break
            claimed = spool.claim(worker_id)
            if claimed is None:
                if max_idle is not None and time.time() - idle_since > max_idle:
                    stop_reason = "max-idle"
                    break
                telemetry.flush()
                time.sleep(poll_interval)
                continue
            idle_since = time.time()
            fingerprint, job = claimed
            probe_start = time.monotonic()
            hit = store.probe(fingerprint)
            telemetry.emit(
                "probe",
                fingerprint=fingerprint,
                worker=worker_id,
                hit=hit,
                duration=round(time.monotonic() - probe_start, 6),
            )
            if hit:
                # Someone else already computed it (retry overlap, a second
                # submitter, a warm cache): drop the claim, keep the result.
                telemetry.metrics.inc("worker.dedupe_skips")
                spool.finish(worker_id, fingerprint)
                continue
            try:
                execute_start = time.monotonic()
                result, phases = _execute_traced(job, telemetry)
                execute_seconds = time.monotonic() - execute_start
                telemetry.emit(
                    "execute",
                    fingerprint=fingerprint,
                    worker=worker_id,
                    duration=round(execute_seconds, 6),
                    profile=phases,
                )
                telemetry.metrics.observe("execute_seconds", execute_seconds)
                store_start = time.monotonic()
                store.put(job, result, fingerprint)
                store_seconds = time.monotonic() - store_start
                telemetry.emit(
                    "store",
                    fingerprint=fingerprint,
                    worker=worker_id,
                    duration=round(store_seconds, 6),
                )
                telemetry.metrics.observe("store_seconds", store_seconds)
            except Exception as error:  # noqa: BLE001 - the loop must survive
                # Execution *and* store failures report through the spool:
                # a worker outlives any single bad job (or full disk) and
                # the scheduler owns the retry policy.
                _LOGGER.warning(
                    "worker %s: job %s failed: %s", worker_id, fingerprint[:12], error
                )
                spool.report_error(fingerprint, worker_id, error)
                spool.finish(worker_id, fingerprint)
                continue
            spool.finish(worker_id, fingerprint)
            executed += 1
            telemetry.metrics.inc("worker.executed")
            telemetry.flush()
    finally:
        spool.unregister_worker(worker_id)
        store.close()
        telemetry.emit(
            "worker.stop", worker=worker_id, executed=executed, reason=stop_reason
        )
        telemetry.close()
    return executed


class WorkerPool:
    """A set of local worker processes bound to one spool + store.

    The pool only *manages* processes (spawn, liveness, stop); all actual
    coordination goes through the spool, so pool workers and foreign
    workers (another ``repro serve`` on the same directory) are
    indistinguishable to the scheduler.
    """

    def __init__(
        self,
        spool_root: Union[str, Path],
        cache_dir: Union[str, Path],
        workers: int = 2,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_idle: Optional[float] = None,
        telemetry_dir: Union[str, Path, None] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spool = Spool(spool_root)
        self.cache_dir = Path(cache_dir)
        self.poll_interval = poll_interval
        self.max_idle = max_idle
        self.telemetry_dir = (
            str(telemetry_dir) if telemetry_dir is not None else None
        )
        self.worker_count = workers
        self.processes: List[multiprocessing.Process] = []

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (idempotent top-up to the target count)."""
        self.spool.clear_stop()
        alive = [p for p in self.processes if p.is_alive()]
        for index in range(len(alive), self.worker_count):
            worker_id = f"pool-{os.getpid()}-{index}-{uuid.uuid4().hex[:6]}"
            process = multiprocessing.Process(
                target=worker_main,
                args=(str(self.spool.root), str(self.cache_dir), worker_id),
                kwargs={
                    "poll_interval": self.poll_interval,
                    "max_idle": self.max_idle,
                    "telemetry_dir": self.telemetry_dir,
                },
                daemon=True,
                name=worker_id,
            )
            process.start()
            self.processes.append(process)
        return self

    def alive_count(self) -> int:
        return sum(1 for p in self.processes if p.is_alive())

    def kill_one(self) -> Optional[int]:
        """SIGKILL one live worker (fault injection for tests/CI); its pid."""
        for process in self.processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
                return process.pid
        return None

    def stop(self, timeout: float = 10.0) -> None:
        """Raise the stop sentinel and reap every pool process."""
        self.spool.request_stop()
        deadline = time.time() + timeout
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.time()))
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=1.0)
        self.processes = []
        self.spool.clear_stop()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"WorkerPool(root={str(self.spool.root)!r}, "
            f"workers={self.worker_count}, alive={self.alive_count()})"
        )
