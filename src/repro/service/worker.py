"""Persistent service workers: claim → execute → store, forever.

A worker is a long-running process bound to a spool directory and a shared
:class:`~repro.service.store.IndexedResultStore`.  Its loop is the whole
contract:

1. heartbeat (touch ``workers/<id>.alive`` — the scheduler's liveness
   signal),
2. atomically claim one pending job from the spool,
3. skip execution if the result already landed (another worker, an earlier
   attempt, a warm cache — one indexed probe, results are idempotent),
4. execute, store the result (file + index row), release the claim,
5. report execution errors to the spool instead of dying — a worker
   outlives any individual job failure; only a kill/crash takes it down,
   and then the stale heartbeat plus the left-behind claim are exactly
   what the scheduler's dead-worker sweep looks for.

:class:`WorkerPool` manages a set of such workers as local child
processes; ``python -m repro serve`` is its CLI face.  Nothing requires
the pool, though — any process on any machine that can see the spool
directory can run :func:`worker_main` and join the service.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
from pathlib import Path
from typing import List, Optional, Union

from repro.service.spool import Spool
from repro.service.store import IndexedResultStore
from repro.utils.logging import get_logger

__all__ = ["worker_main", "WorkerPool", "DEFAULT_POLL_INTERVAL"]

_LOGGER = get_logger("service.worker")

#: Seconds a worker sleeps between queue polls when idle.
DEFAULT_POLL_INTERVAL = 0.05


def worker_main(
    spool_root: Union[str, Path],
    cache_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    max_idle: Optional[float] = None,
) -> int:
    """Run one worker until the stop sentinel appears (or idle expiry).

    Returns the number of jobs this worker executed.  ``max_idle`` bounds
    how long the worker lingers with an empty queue — ``None`` means "serve
    forever" (the ``repro serve`` default).
    """
    worker_id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    spool = Spool(spool_root)
    store = IndexedResultStore(cache_dir)
    spool.register_worker(worker_id)
    executed = 0
    idle_since = time.time()
    try:
        while True:
            spool.heartbeat(worker_id)
            if spool.stop_requested():
                break
            claimed = spool.claim(worker_id)
            if claimed is None:
                if max_idle is not None and time.time() - idle_since > max_idle:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = time.time()
            fingerprint, job = claimed
            if store.probe(fingerprint):
                # Someone else already computed it (retry overlap, a second
                # submitter, a warm cache): drop the claim, keep the result.
                spool.finish(worker_id, fingerprint)
                continue
            try:
                result = job.execute()
                store.put(job, result, fingerprint)
            except Exception as error:  # noqa: BLE001 - the loop must survive
                # Execution *and* store failures report through the spool:
                # a worker outlives any single bad job (or full disk) and
                # the scheduler owns the retry policy.
                _LOGGER.warning(
                    "worker %s: job %s failed: %s", worker_id, fingerprint[:12], error
                )
                spool.report_error(fingerprint, worker_id, error)
                spool.finish(worker_id, fingerprint)
                continue
            spool.finish(worker_id, fingerprint)
            executed += 1
    finally:
        spool.unregister_worker(worker_id)
        store.close()
    return executed


class WorkerPool:
    """A set of local worker processes bound to one spool + store.

    The pool only *manages* processes (spawn, liveness, stop); all actual
    coordination goes through the spool, so pool workers and foreign
    workers (another ``repro serve`` on the same directory) are
    indistinguishable to the scheduler.
    """

    def __init__(
        self,
        spool_root: Union[str, Path],
        cache_dir: Union[str, Path],
        workers: int = 2,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_idle: Optional[float] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spool = Spool(spool_root)
        self.cache_dir = Path(cache_dir)
        self.poll_interval = poll_interval
        self.max_idle = max_idle
        self.worker_count = workers
        self.processes: List[multiprocessing.Process] = []

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (idempotent top-up to the target count)."""
        self.spool.clear_stop()
        alive = [p for p in self.processes if p.is_alive()]
        for index in range(len(alive), self.worker_count):
            worker_id = f"pool-{os.getpid()}-{index}-{uuid.uuid4().hex[:6]}"
            process = multiprocessing.Process(
                target=worker_main,
                args=(str(self.spool.root), str(self.cache_dir), worker_id),
                kwargs={
                    "poll_interval": self.poll_interval,
                    "max_idle": self.max_idle,
                },
                daemon=True,
                name=worker_id,
            )
            process.start()
            self.processes.append(process)
        return self

    def alive_count(self) -> int:
        return sum(1 for p in self.processes if p.is_alive())

    def kill_one(self) -> Optional[int]:
        """SIGKILL one live worker (fault injection for tests/CI); its pid."""
        for process in self.processes:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
                return process.pid
        return None

    def stop(self, timeout: float = 10.0) -> None:
        """Raise the stop sentinel and reap every pool process."""
        self.spool.request_stop()
        deadline = time.time() + timeout
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.time()))
        for process in self.processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=1.0)
        self.processes = []
        self.spool.clear_stop()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"WorkerPool(root={str(self.spool.root)!r}, "
            f"workers={self.worker_count}, alive={self.alive_count()})"
        )
