"""The sqlite-indexed result store: the service's shared source of truth.

:class:`IndexedResultStore` wraps the content-addressed file cache
(:class:`~repro.runner.cache.ResultCache`) with an sqlite index holding one
row per stored fingerprint — substrate, scenario, seed, payload version and
file mtime.  The files stay the durable record (one JSON per result, exactly
as before, so every pre-existing cache directory and fingerprint keeps
working); the index is a *derived* structure that turns the two hot probes
of a long-running service into single indexed queries:

* **batch dedupe** — "which of these 10 000 fingerprints are already
  stored?" is one ``SELECT ... WHERE fingerprint IN (...)`` per chunk
  instead of 10 000 ``stat`` calls (the RVH-style observation: an index
  over the hash space beats per-key filesystem probes);
* **completion polling** — the scheduler streams results as they land by
  probing the same index, so a million-cell atlas never re-stats the world
  per poll tick.

Consistency model: the payload file is written *before* its index row, so
the index can only ever under-report (a crash between the two steps costs
one redundant recompute, never a wrong answer).  :meth:`rebuild` reconciles
the index from the files — used on first open of a pre-existing cache
directory and available for manual repair.

Several processes (workers, schedulers, CLI clients) share one index; WAL
journaling and a busy timeout make concurrent readers/writers safe, and
each process opens its own connection (sqlite connections must not cross
``fork``).
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.runner.cache import ResultCache

__all__ = ["IndexedResultStore", "INDEX_FILENAME"]

#: The index database, stored alongside the fingerprint shard directories.
INDEX_FILENAME = "index.sqlite"

#: Fingerprints per ``IN (...)`` clause — comfortably under sqlite's
#: default 999-variable limit while keeping a 10k-probe at ~20 queries.
_PROBE_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    substrate   TEXT NOT NULL DEFAULT 'rounds',
    scenario    TEXT,
    -- TEXT: derived per-repetition seeds are sha256-based and routinely
    -- exceed sqlite's 64-bit INTEGER range.
    seed        TEXT,
    version     INTEGER NOT NULL,
    mtime       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_scenario
    ON results (scenario, substrate);
"""


class IndexedResultStore(ResultCache):
    """A :class:`ResultCache` with an sqlite index over its fingerprints.

    Drop-in compatible with the plain cache (``get``/``put``/``clear`` keep
    their contracts and the file layout is unchanged); additionally
    maintains the index on every ``put`` and answers membership probes
    (:meth:`probe_many`) without touching the filesystem.

    ``query_count`` counts index queries issued — the O(1)-probes property
    is asserted against it by the service test-suite.
    """

    def __init__(self, root: Union[str, Path]):
        super().__init__(root)
        self._connection: Optional[sqlite3.Connection] = None
        self._owner_pid: Optional[int] = None
        self.query_count = 0
        # A pre-existing file cache opened for the first time gets its
        # index reconciled up front, so probes never under-report the
        # warm cache an earlier (index-less) run built.
        if self.root.exists() and not (self.root / INDEX_FILENAME).exists():
            if any(self.root.glob("*/*.json")):
                self.rebuild()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILENAME

    def _connect(self) -> sqlite3.Connection:
        """This process's connection (re-opened after a ``fork``)."""
        pid = os.getpid()
        if self._connection is None or self._owner_pid != pid:
            self.root.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(self.index_path, timeout=30.0)
            connection.execute("PRAGMA busy_timeout = 30000")
            try:
                connection.execute("PRAGMA journal_mode = WAL")
            except sqlite3.OperationalError:  # pragma: no cover - odd fs
                pass
            connection.executescript(_SCHEMA)
            connection.commit()
            self._connection = connection
            self._owner_pid = pid
        return self._connection

    def close(self) -> None:
        """Close this process's index connection (files are unaffected)."""
        if self._connection is not None and self._owner_pid == os.getpid():
            self._connection.close()
        self._connection = None
        self._owner_pid = None

    def __getstate__(self) -> Dict[str, object]:
        # Stores travel to worker processes by value; the sqlite
        # connection does not survive pickling or fork and is re-opened
        # lazily on first use in the new process.
        state = self.__dict__.copy()
        state["_connection"] = None
        state["_owner_pid"] = None
        return state

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def put(self, job, result, fingerprint=None) -> Path:
        """Store the result file, then index it (file first — see module doc)."""
        fingerprint = fingerprint or job.fingerprint()
        path = super().put(job, result, fingerprint)
        self.index_entry(fingerprint, job=job, path=path)
        return path

    def index_entry(self, fingerprint: str, job=None, path: Optional[Path] = None) -> None:
        """Insert/refresh one index row from a stored payload file."""
        path = path or self.path_for(fingerprint)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        substrate, scenario, seed, version = self._describe(job, path)
        connection = self._connect()
        self.query_count += 1
        connection.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, substrate, scenario, seed, version, mtime) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (fingerprint, substrate, scenario, seed, version, mtime),
        )
        connection.commit()

    @staticmethod
    def _describe(job, path: Path):
        """(substrate, scenario, seed, version) for an index row."""
        from repro.runner.jobs import RESULT_PAYLOAD_VERSION

        substrate = "rounds"
        scenario: Optional[str] = None
        seed: Optional[str] = None
        version = RESULT_PAYLOAD_VERSION
        if job is not None:
            raw_seed = getattr(job, "seed", None)
            seed = str(raw_seed) if raw_seed is not None else None
            spec = getattr(job, "spec", None)
            if spec is not None and getattr(spec, "name", None):
                scenario = spec.name
            if hasattr(job, "payload"):
                try:
                    if job.payload().get("substrate") == "swarm":
                        substrate = "swarm"
                except Exception:
                    pass
        else:
            # Rebuild path: sniff the stored payload instead.
            try:
                with path.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if isinstance(payload, dict):
                    version = int(payload.get("version", version))
                    if payload.get("kind") == "swarm":
                        substrate = "swarm"
            except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
                pass
        return substrate, scenario, seed, version

    def rebuild(self) -> int:
        """Reconcile the index from the payload files; returns the row count.

        Drops every row and re-indexes what is actually on disk — the
        recovery path for an index lost, corrupted, or created after the
        file cache (a plain :class:`ResultCache` run leaves no index).
        Scenario and seed are unknown for rebuilt rows (the files do not
        record them); substrate and payload version come from the payload.
        """
        connection = self._connect()
        self.query_count += 1
        connection.execute("DELETE FROM results")
        rows = []
        if self.root.exists():
            for entry in self.root.glob("*/*.json"):
                fingerprint = entry.stem
                try:
                    mtime = entry.stat().st_mtime
                except OSError:
                    continue
                substrate, scenario, seed, version = self._describe(None, entry)
                rows.append((fingerprint, substrate, scenario, seed, version, mtime))
        if rows:
            self.query_count += 1
            connection.executemany(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, substrate, scenario, seed, version, mtime) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
        connection.commit()
        return len(rows)

    # ------------------------------------------------------------------ #
    # probes
    # ------------------------------------------------------------------ #
    def probe_many(self, fingerprints: Sequence[str]) -> Set[str]:
        """The subset of ``fingerprints`` present in the store.

        One indexed query per :data:`_PROBE_CHUNK` fingerprints — the whole
        point of the index: a 1000-job dedupe probe is 2 queries, not 1000
        file ``stat`` calls.
        """
        unique: List[str] = list(dict.fromkeys(fingerprints))
        present: Set[str] = set()
        if not unique:
            return present
        connection = self._connect()
        for start in range(0, len(unique), _PROBE_CHUNK):
            chunk = unique[start : start + _PROBE_CHUNK]
            marks = ",".join("?" * len(chunk))
            self.query_count += 1
            cursor = connection.execute(
                f"SELECT fingerprint FROM results WHERE fingerprint IN ({marks})",
                chunk,
            )
            present.update(row[0] for row in cursor)
        hits, misses = len(present), len(unique) - len(present)
        if hits:
            self.hits += hits
            self.metrics.inc("cache.hits", hits)
        if misses:
            self.misses += misses
            self.metrics.inc("cache.misses", misses)
        return present

    def probe(self, fingerprint: str) -> bool:
        """Whether one fingerprint is present (single indexed query)."""
        return fingerprint in self.probe_many([fingerprint])

    def indexed_count(self) -> int:
        """Number of rows in the index (== stored results when consistent)."""
        self.query_count += 1
        cursor = self._connect().execute("SELECT COUNT(*) FROM results")
        return int(cursor.fetchone()[0])

    def scenario_counts(self) -> Dict[str, int]:
        """Stored results per scenario label (``None`` key for unlabelled)."""
        self.query_count += 1
        cursor = self._connect().execute(
            "SELECT scenario, COUNT(*) FROM results GROUP BY scenario"
        )
        return {row[0]: int(row[1]) for row in cursor}

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every result, quarantine file *and* index row."""
        removed = super().clear()
        connection = self._connect()
        self.query_count += 1
        connection.execute("DELETE FROM results")
        connection.commit()
        return removed

    def forget(self, fingerprints: Iterable[str]) -> None:
        """Drop index rows (e.g. for files found missing); files untouched."""
        connection = self._connect()
        batch = list(fingerprints)
        for start in range(0, len(batch), _PROBE_CHUNK):
            chunk = batch[start : start + _PROBE_CHUNK]
            marks = ",".join("?" * len(chunk))
            self.query_count += 1
            connection.execute(
                f"DELETE FROM results WHERE fingerprint IN ({marks})", chunk
            )
        connection.commit()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IndexedResultStore(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, queries={self.query_count})"
        )
