"""Atlas-as-a-service: progressive grid runs through the job service.

The glue between the declarative :class:`~repro.atlas.grid.AtlasSpec` and
the service layer.  :func:`run_atlas_service` executes a grid exactly as
``repro atlas`` does — same compiled jobs, same seeds, same report, proven
bit-identical by the service test-suite — but on a
:class:`~repro.service.runner.ServiceRunner`: the cells are computed by
persistent workers (surviving worker death mid-grid) and the report data
*streams*, with a per-cell progress line emitted the moment each
(protocol, scenario) cell has all its repetitions in the store.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.atlas.grid import AtlasSpec
from repro.experiments import atlas as atlas_experiment
from repro.scenarios import get_substrate
from repro.service.runner import ServiceRunner
from repro.service.scheduler import Scheduler
from repro.utils.logging import get_progress_logger

__all__ = ["cell_progress", "run_atlas_service"]

_PROGRESS = get_progress_logger("atlas")

#: Default progress sink: the ``repro.progress`` logger, so applications
#: control progress output with ``configure_progress_logging`` (and the CLI
#: ``--quiet`` flag) instead of monkeypatching ``print``.  Pass an explicit
#: ``emit`` to capture lines, or ``emit=None`` for silence.
_LOG_EMIT = _PROGRESS.info


def cell_progress(
    spec: AtlasSpec,
    substrate: str = "rounds",
    emit: Optional[Callable[[str], None]] = _LOG_EMIT,
) -> Callable[[str, object, int, int], None]:
    """A :class:`ServiceRunner` progress callback that reports whole cells.

    Compiles the grid (deterministically — the same jobs the run itself
    compiles) to map each job fingerprint onto its cells, then emits one
    line per *completed cell*: the granularity at which the atlas report
    grows, rather than one line per repetition.
    """
    if substrate == "rounds":
        compiled = spec.jobs()
    else:
        sub = get_substrate(substrate)
        compiled = [
            (
                cell,
                sub.jobs(
                    spec.cell_spec(cell),
                    spec.scale,
                    master_seed=spec.master_seed,
                    repetitions=spec.repetitions,
                ),
            )
            for cell in spec.cells()
        ]
    remaining: Dict[Tuple[str, str], set] = {}
    owners: Dict[str, List[Tuple[str, str]]] = {}
    for cell, batch in compiled:
        fingerprints = {job.fingerprint() for job in batch}
        remaining[cell.key] = set(fingerprints)
        for fingerprint in fingerprints:
            owners.setdefault(fingerprint, []).append(cell.key)
    total_cells = len(remaining)
    done_cells = 0

    def callback(fingerprint: str, result, done: int, total: int) -> None:
        nonlocal done_cells
        for key in owners.get(fingerprint, ()):
            cell_pending = remaining[key]
            cell_pending.discard(fingerprint)
            if not cell_pending:
                done_cells += 1
                if emit is not None:
                    protocol, scenario = key
                    emit(
                        f"  cell {done_cells}/{total_cells} complete: "
                        f"{protocol} x {scenario} "
                        f"({done}/{total} jobs)"
                    )

    return callback


def run_atlas_service(
    spec: AtlasSpec,
    scheduler: Scheduler,
    substrate: str = "rounds",
    timeout: Optional[float] = None,
    emit: Optional[Callable[[str], None]] = _LOG_EMIT,
    engine: Optional[str] = None,
):
    """Run an atlas grid through the service, streaming cell completions.

    Returns the same outcome object the in-process drivers return
    (:class:`~repro.experiments.atlas.AtlasOutcome` on the rounds
    substrate, :class:`~repro.experiments.atlas.SwarmAtlasOutcome` on
    swarm), so rendering, CSV export and the execution-accounting footer
    are shared code; the underlying simulations ran on whatever workers
    serve the scheduler's spool.
    """
    runner = ServiceRunner(
        scheduler,
        timeout=timeout,
        progress=cell_progress(spec, substrate=substrate, emit=emit),
    )
    if substrate == "swarm":
        return atlas_experiment.run_swarm(spec=spec, runner=runner)
    return atlas_experiment.run(spec=spec, runner=runner, engine=engine)
