"""The scheduler: submissions, streaming completion and fault recovery.

:class:`Scheduler` is the client half of the service.  A submission is a
batch of content-addressed jobs (round-engine or swarm — anything with
``fingerprint()``/``execute()``); the scheduler

* **dedupes** it three ways before any work happens: within the batch (one
  entry per fingerprint), against the shared sqlite-indexed store (one
  ``probe_many`` query answers "already computed", however many submitters
  filled the store), and against the spool (a job another submitter already
  queued or a worker already claimed is awaited, not re-queued — enqueue
  itself is exclusive, so even a perfect race cannot double-queue);
* **streams** completions as they land: :meth:`Submission.stream` yields
  ``(fingerprint, result)`` in completion order by polling the store index,
  which is what lets an atlas report render progressively instead of after
  the last straggler;
* **recovers** from every failure mode a long-running service meets:

  - *worker death* — stale heartbeat ⇒ the dead worker's claimed jobs are
    re-queued (survivability: jobs are re-mapped to live workers, never
    lost);
  - *job timeout* — a claim older than ``job_timeout`` is pulled back to
    pending (the original worker may still finish it; results are
    idempotent, so the race is harmless);
  - *job error* — workers report exceptions through the spool; the
    scheduler retries with exponential backoff up to ``max_attempts``,
    then surfaces the job as failed (``results(strict=True)`` raises a
    :class:`ServiceError` naming every failed fingerprint).

The scheduler holds all retry/backoff state in memory; the spool and the
store hold everything that must survive *it* dying — a fresh scheduler
pointed at the same directories simply resubmits and converges on the
already-computed results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.service.spool import Spool
from repro.service.store import IndexedResultStore
from repro.telemetry import NULL_TELEMETRY
from repro.utils.logging import get_logger

__all__ = [
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "Scheduler",
    "Submission",
]

_LOGGER = get_logger("service.scheduler")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the scheduling/recovery machinery."""

    #: Seconds a claimed job may run before it is pulled back to pending.
    job_timeout: float = 300.0
    #: Total execution attempts per job (first try + retries).
    max_attempts: int = 3
    #: Base of the exponential retry backoff (``base * 2**(attempt-1)``).
    backoff_base: float = 0.25
    #: Ceiling on the per-retry backoff delay.
    backoff_max: float = 10.0
    #: Heartbeat age beyond which a worker counts as dead.
    liveness_timeout: float = 5.0
    #: Seconds a worker that has *never* heartbeated stays presumed-alive,
    #: judged from its registration/claim mtimes.  A freshly spawned worker
    #: (registered, mid-import, not yet through its first loop iteration)
    #: has ``heartbeat_age == inf``; without the grace window the dead-worker
    #: sweep would re-queue its claims out from under it.
    registration_grace: float = 10.0
    #: Seconds between scheduler poll sweeps while streaming.
    poll_interval: float = 0.05

    def backoff_delay(self, attempt: int) -> float:
        """Delay before re-queueing after the ``attempt``-th failure."""
        return min(self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1)))


class ServiceError(RuntimeError):
    """A submission could not be completed; carries per-job failures."""

    def __init__(self, message: str, failures: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.failures = dict(failures or {})


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service metrics (the ``RunnerStats`` of the service)."""

    queue_depth: int = 0
    in_flight: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers_alive: int = 0
    workers_dead: int = 0

    def render(self) -> str:
        """One status line (the ``serve``/``submit`` ticker format)."""
        return (
            f"queue={self.queue_depth} in-flight={self.in_flight} "
            f"done={self.completed} failed={self.failed} retries={self.retries} "
            f"workers={self.workers_alive}+{self.workers_dead}dead"
        )


class Scheduler:
    """Client handle on a service: a spool for work, a store for results."""

    def __init__(
        self,
        spool_root: Union[str, Path],
        cache_dir: Union[str, Path, None] = None,
        store: Optional[IndexedResultStore] = None,
        config: Optional[ServiceConfig] = None,
        telemetry=None,
    ):
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.spool = Spool(spool_root, telemetry=self.telemetry)
        if store is not None:
            self.store = store
        elif cache_dir is not None:
            self.store = IndexedResultStore(cache_dir)
        else:
            raise ValueError("Scheduler needs a cache_dir or an explicit store")
        self.config = config or ServiceConfig()

    def submit(self, jobs: Sequence[object]) -> "Submission":
        """Queue what is missing, await what exists; returns the handle."""
        return Submission(self, list(jobs))

    def service_stats(self) -> ServiceStats:
        """Spool-level metrics only (no submission attached)."""
        workers = self.spool.workers(
            self.config.liveness_timeout,
            registration_grace=self.config.registration_grace,
        )
        return ServiceStats(
            queue_depth=self.spool.queue_depth(),
            in_flight=self.spool.in_flight(),
            workers_alive=sum(1 for w in workers if w.alive),
            workers_dead=sum(1 for w in workers if not w.alive),
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Scheduler(spool={self.spool!r}, store={self.store!r})"


@dataclass
class _JobState:
    """Scheduler-side bookkeeping for one unique fingerprint."""

    job: object
    attempts: int = 0
    #: Monotonic deadline before which a retry must not be re-queued.
    eligible_at: float = 0.0
    deferred: bool = False
    first_claimed: Optional[float] = None


class Submission:
    """One submitted batch: dedupe accounting + streaming completion."""

    def __init__(self, scheduler: Scheduler, jobs: List[object]):
        self.scheduler = scheduler
        self.telemetry = scheduler.telemetry
        self.jobs = jobs
        self.fingerprints: List[str] = [job.fingerprint() for job in jobs]
        # Batch-level dedupe: one state per unique fingerprint, first job wins.
        self.states: Dict[str, _JobState] = {}
        order: List[str] = []
        for fingerprint, job in zip(self.fingerprints, jobs):
            if fingerprint not in self.states:
                self.states[fingerprint] = _JobState(job=job)
                order.append(fingerprint)
        self.order = order
        self.deduplicated = len(jobs) - len(order)

        # Store-level dedupe: one indexed query, not len(order) file stats.
        store = scheduler.store
        cached = store.probe_many(order)
        self.initial_hits = len(cached)
        self.completed: Dict[str, object] = {}
        self.failures: Dict[str, str] = {}
        self.retries = 0
        self.enqueued = 0
        self._ready = [fp for fp in order if fp in cached]

        metrics = self.telemetry.metrics
        metrics.inc("scheduler.submitted", float(len(order)))
        if self.deduplicated:
            metrics.inc("dedupe.batch", float(self.deduplicated))
        if self.initial_hits:
            metrics.inc("dedupe.store_hits", float(self.initial_hits))

        # Spool-level dedupe: skip what another submitter queued or a
        # worker holds; enqueue itself is exclusive, so races are safe.
        spool = scheduler.spool
        for fingerprint in order:
            self.telemetry.emit(
                "submit", fingerprint=fingerprint, cached=fingerprint in cached
            )
            if fingerprint in cached:
                continue
            state = self.states[fingerprint]
            if spool.is_queued_or_claimed(fingerprint):
                metrics.inc("dedupe.spool_skips")
                continue
            if spool.enqueue(fingerprint, state.job):
                self.enqueued += 1
        self.telemetry.flush()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def total_unique(self) -> int:
        return len(self.order)

    def pending_fingerprints(self) -> List[str]:
        return [
            fp
            for fp in self.order
            if fp not in self.completed and fp not in self.failures
        ]

    def stats(self) -> ServiceStats:
        spool = self.scheduler.spool
        config = self.scheduler.config
        workers = spool.workers(
            config.liveness_timeout,
            registration_grace=config.registration_grace,
        )
        executed = max(0, len(self.completed) - self.initial_hits)
        return ServiceStats(
            queue_depth=spool.queue_depth(),
            in_flight=spool.in_flight(),
            completed=len(self.completed),
            failed=len(self.failures),
            retries=self.retries,
            cache_hits=self.initial_hits,
            executed=executed,
            workers_alive=sum(1 for w in workers if w.alive),
            workers_dead=sum(1 for w in workers if not w.alive),
        )

    # ------------------------------------------------------------------ #
    # the recovery/completion pump
    # ------------------------------------------------------------------ #
    def _collect(self, fingerprint: str) -> Optional[object]:
        """Fetch one completed result from the store (None if torn)."""
        state = self.states[fingerprint]
        result = self.scheduler.store.get(state.job, fingerprint)
        if result is None:
            # Index said present but the file is gone/corrupt: drop the
            # stale row and let the pump re-queue the job.
            self.scheduler.store.forget([fingerprint])
            return None
        self.completed[fingerprint] = result
        self.telemetry.emit(
            "complete", fingerprint=fingerprint, attempts=state.attempts
        )
        self.telemetry.metrics.inc("scheduler.completed")
        return result

    def _fail_or_defer(self, fingerprint: str, reason: str, now: float) -> None:
        """Count one failed attempt; defer a retry or mark terminal."""
        state = self.states[fingerprint]
        state.attempts += 1
        config = self.scheduler.config
        if state.attempts >= config.max_attempts:
            self.failures[fingerprint] = (
                f"{reason} (attempt {state.attempts}/{config.max_attempts}, "
                f"retries exhausted)"
            )
            self.telemetry.emit(
                "failed",
                fingerprint=fingerprint,
                reason=reason,
                attempts=state.attempts,
            )
            self.telemetry.metrics.inc("scheduler.failed")
            _LOGGER.warning("job %s failed terminally: %s", fingerprint[:12], reason)
            return
        self.retries += 1
        state.deferred = True
        state.eligible_at = now + config.backoff_delay(state.attempts)
        self.telemetry.emit(
            "retry",
            fingerprint=fingerprint,
            reason=reason,
            attempt=state.attempts,
            delay=round(state.eligible_at - now, 6),
        )
        self.telemetry.metrics.inc("scheduler.retries")
        _LOGGER.info(
            "job %s: %s — retry %d/%d in %.2fs",
            fingerprint[:12],
            reason,
            state.attempts,
            config.max_attempts - 1,
            state.eligible_at - now,
        )

    def _pump(self) -> List[Tuple[str, object]]:
        """One recovery + completion sweep; returns newly completed pairs."""
        scheduler = self.scheduler
        spool = scheduler.spool
        store = scheduler.store
        config = scheduler.config
        now = time.time()
        fresh: List[Tuple[str, object]] = []

        pending = self.pending_fingerprints()
        if not pending:
            return fresh

        # 1. Completions: one indexed query over everything still awaited.
        for fingerprint in store.probe_many(pending):
            result = self._collect(fingerprint)
            if result is not None:
                self.states[fingerprint].deferred = False
                fresh.append((fingerprint, result))
        pending = [fp for fp in pending if fp not in self.completed]
        if not pending:
            return fresh
        awaiting = set(pending)

        # 2. Reported execution errors -> bounded retry with backoff.
        # One directory listing finds them all; per-job reads only follow
        # for errors this submission actually owns.
        for fingerprint in spool.error_fingerprints():
            if fingerprint not in awaiting:
                continue
            error = spool.take_error(fingerprint)
            if error is not None:
                self._fail_or_defer(
                    fingerprint, f"execution failed: {error.get('error')}", now
                )

        # 3. Worker liveness: re-queue every claim a dead worker holds.
        # The registration grace keeps never-heartbeated (still starting)
        # workers out of the dead set — see ServiceConfig.registration_grace.
        claims = spool.claimed_jobs()
        dead = {
            info.worker_id
            for info in spool.workers(
                config.liveness_timeout,
                registration_grace=config.registration_grace,
            )
            if not info.alive
        }
        claimed_now = set()
        for worker_id, fingerprints in claims.items():
            if worker_id in dead:
                for fingerprint in fingerprints:
                    if fingerprint not in awaiting:
                        continue
                    if spool.release_claim(
                        worker_id, fingerprint, reason="dead-worker"
                    ):
                        self.retries += 1
                        self.states[fingerprint].first_claimed = None
                        _LOGGER.warning(
                            "worker %s is dead; re-queued job %s",
                            worker_id,
                            fingerprint[:12],
                        )
            else:
                claimed_now.update(fingerprints)

        # 4. Job timeout: a claim held too long goes back to pending.
        for fingerprint in list(awaiting):
            state = self.states[fingerprint]
            if fingerprint in claimed_now:
                if state.first_claimed is None:
                    state.first_claimed = now
                elif now - state.first_claimed > config.job_timeout:
                    self.telemetry.emit(
                        "timeout",
                        fingerprint=fingerprint,
                        held_for=round(now - state.first_claimed, 6),
                    )
                    for worker_id, fingerprints in claims.items():
                        if fingerprint in fingerprints:
                            spool.release_claim(
                                worker_id, fingerprint, reason="timeout"
                            )
                            break
                    state.first_claimed = None
                    self._fail_or_defer(
                        fingerprint,
                        f"timed out after {config.job_timeout:.1f}s in flight",
                        now,
                    )
            else:
                state.first_claimed = None

        # 5. Deferred retries whose backoff expired -> re-queue.
        # 6. Orphans (dropped claims, undecodable job files) -> re-queue.
        queued_now = {
            entry.stem for entry in spool.pending_dir.glob("*.job")
        } if spool.pending_dir.exists() else set()
        for fingerprint in list(awaiting):
            if fingerprint in self.failures:
                continue
            state = self.states[fingerprint]
            if state.deferred:
                if now >= state.eligible_at:
                    state.deferred = False
                    # A timed-out job was already released back to pending
                    # (and may even be claimed again): only enqueue if it is
                    # genuinely absent, or the queue grows a duplicate.
                    if fingerprint not in queued_now and fingerprint not in claimed_now:
                        if spool.enqueue(fingerprint, state.job):
                            self.enqueued += 1
                continue
            if fingerprint not in queued_now and fingerprint not in claimed_now:
                # Not stored, not queued, not in flight, not deferred:
                # it fell through a crack — put it back (idempotent).
                if spool.enqueue(fingerprint, state.job):
                    self.enqueued += 1

        metrics = self.telemetry.metrics
        metrics.gauge("spool.queue_depth", spool.queue_depth())
        metrics.gauge("spool.in_flight", spool.in_flight())
        self.telemetry.flush()
        return fresh

    # ------------------------------------------------------------------ #
    # streaming / collection
    # ------------------------------------------------------------------ #
    def stream(
        self, timeout: Optional[float] = None
    ) -> Iterator[Tuple[str, object]]:
        """Yield ``(fingerprint, result)`` in completion order.

        Pre-cached results come first (they are already done); the rest
        arrive as workers complete them.  The iterator ends when every
        unique job has completed *or failed terminally* — check
        :attr:`failures` (or call :meth:`results` with ``strict=True``)
        afterwards.  ``timeout`` bounds the total wait.
        """
        deadline = None if timeout is None else time.time() + timeout
        for fingerprint in self._ready:
            result = self._collect(fingerprint)
            if result is not None:
                yield fingerprint, result
        self._ready = []
        config = self.scheduler.config
        while self.pending_fingerprints():
            for pair in self._pump():
                yield pair
            if not self.pending_fingerprints():
                break
            if deadline is not None and time.time() > deadline:
                raise ServiceError(
                    f"submission timed out with {len(self.pending_fingerprints())} "
                    f"of {self.total_unique} jobs incomplete "
                    f"({self.stats().render()})",
                    failures=self.failures,
                )
            time.sleep(config.poll_interval)

    def wait(self, timeout: Optional[float] = None) -> "Submission":
        """Drive :meth:`stream` to completion (results kept on the handle)."""
        for _ in self.stream(timeout=timeout):
            pass
        return self

    def results(
        self, timeout: Optional[float] = None, strict: bool = True
    ) -> List[object]:
        """All results **in submitted job order** (duplicates fanned out).

        With ``strict`` (default) raises :class:`ServiceError` if any job
        failed terminally; otherwise failed positions hold ``None``.
        """
        self.wait(timeout=timeout)
        if strict and self.failures:
            summary = "; ".join(
                f"{fp[:12]}: {message}"
                for fp, message in sorted(self.failures.items())
            )
            raise ServiceError(
                f"{len(self.failures)} of {self.total_unique} jobs failed "
                f"terminally: {summary}",
                failures=self.failures,
            )
        return [self.completed.get(fp) for fp in self.fingerprints]
