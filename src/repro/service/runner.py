"""A drop-in runner that executes batches through the service.

:class:`ServiceRunner` speaks the :class:`~repro.runner.runner.ExperimentRunner`
interface — ``run(jobs)`` in job order, cumulative ``stats()`` snapshots —
but delegates execution to a :class:`~repro.service.scheduler.Scheduler`:
jobs are deduped against the sqlite-indexed store, queued on the spool,
computed by whatever persistent workers serve it, and streamed back as they
complete.

Because the interface (and the content-addressed determinism underneath)
is identical, every existing driver — ``run_atlas``, the scenario sweep,
the cross-substrate experiment — runs through the service *unchanged* and
produces bit-identical results; the only observable difference is where
the compute happened.  A ``progress`` callback surfaces the streaming:
it fires per completed unique job with ``(fingerprint, result, done,
total)``, which is how the CLI renders an atlas progressively.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.runner.runner import RunnerStats
from repro.service.scheduler import Scheduler, ServiceStats, Submission

__all__ = ["ServiceRunner"]

ProgressCallback = Callable[[str, object, int, int], None]


class ServiceRunner:
    """Execute job batches on a service instead of an in-process pool."""

    def __init__(
        self,
        scheduler: Scheduler,
        timeout: Optional[float] = None,
        progress: Optional[ProgressCallback] = None,
    ):
        self.scheduler = scheduler
        self.timeout = timeout
        self.progress = progress
        self.jobs_executed = 0
        self.jobs_deduplicated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.last_submission: Optional[Submission] = None

    @property
    def cache(self):
        """The shared store (``ExperimentRunner.cache`` duck-type)."""
        return self.scheduler.store

    def run(self, jobs: Sequence[object]) -> List[object]:
        """Submit, stream to completion, return results in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        submission = self.scheduler.submit(jobs)
        self.last_submission = submission
        done = 0
        for fingerprint, result in submission.stream(timeout=self.timeout):
            done += 1
            if self.progress is not None:
                self.progress(fingerprint, result, done, submission.total_unique)
        results = submission.results(timeout=self.timeout, strict=True)
        executed = max(0, len(submission.completed) - submission.initial_hits)
        self.jobs_executed += executed
        self.jobs_deduplicated += submission.deduplicated
        self.cache_hits += submission.initial_hits
        self.cache_misses += executed
        self.retries += submission.retries
        return results

    def run_one(self, job) -> object:
        return self.run([job])[0]

    def stats(self) -> RunnerStats:
        """Cumulative counters in :class:`RunnerStats` form.

        ``executed`` counts jobs the service actually computed for this
        runner's submissions (queue hits by *other* submitters count as
        cache hits here — the service computed them once, globally).
        """
        return RunnerStats(
            executed=self.jobs_executed,
            deduplicated=self.jobs_deduplicated,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )

    def service_stats(self) -> ServiceStats:
        """Live service metrics of the most recent submission (or spool)."""
        if self.last_submission is not None:
            return self.last_submission.stats()
        return self.scheduler.service_stats()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServiceRunner(scheduler={self.scheduler!r}, "
            f"executed={self.jobs_executed})"
        )
