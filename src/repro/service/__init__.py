"""``repro.service`` — the persistent distributed job layer.

Turns the batch-oriented, in-process experiment runner into a long-running
service: an sqlite-indexed shared result store, a directory/queue spool
coordinating persistent worker processes, a scheduler with per-job
timeout / bounded retry / dead-worker recovery, and streaming submissions
that render atlas reports progressively.  ``python -m repro serve`` and
``python -m repro submit`` are the CLI front door.

Layering (the dispatch / orchestration split):

.. code-block:: text

    cli serve/submit            front door
      └─ service.atlas          progressive atlas glue
          └─ service.runner     ExperimentRunner-compatible facade
              └─ service.scheduler   submissions, retry, recovery
                  ├─ service.spool   directory/queue protocol (work)
                  ├─ service.worker  persistent worker processes
                  └─ service.store   sqlite-indexed result store (results)
"""

from repro.service.runner import ServiceRunner
from repro.service.scheduler import (
    Scheduler,
    ServiceConfig,
    ServiceError,
    ServiceStats,
    Submission,
)
from repro.service.spool import Spool, WorkerInfo
from repro.service.store import IndexedResultStore
from repro.service.worker import WorkerPool, worker_main

__all__ = [
    "IndexedResultStore",
    "Scheduler",
    "ServiceConfig",
    "ServiceError",
    "ServiceRunner",
    "ServiceStats",
    "Spool",
    "Submission",
    "WorkerInfo",
    "WorkerPool",
    "worker_main",
]
