"""Simulation jobs: the unit of work scheduled by the experiment runner.

A :class:`SimulationJob` is a fully-specified, picklable description of one
cycle-based simulation run — configuration, behaviours, group labels and
seed.  Two jobs with the same content produce bit-identical results (the
engine is deterministic given a seed), which is what makes the
content-addressed result cache sound: the job's :meth:`fingerprint` *is* the
result's identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.bandwidth import (
    BandwidthDistribution,
    ConstantBandwidth,
    EmpiricalBandwidth,
    MultiClassBandwidth,
    TwoClassBandwidth,
    UniformBandwidth,
)
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.metrics import PeerRecord

__all__ = ["SimulationJob", "result_to_payload", "result_from_payload"]

#: Bump when the cached result payload layout changes.
RESULT_PAYLOAD_VERSION = 1


def _bandwidth_payload(distribution: BandwidthDistribution) -> Dict[str, object]:
    """A lossless, JSON-stable description of a bandwidth distribution.

    ``repr`` is not enough here: :class:`EmpiricalBandwidth` collapses its
    bucket table in ``repr``, and two different tables must not share a cache
    key.  Unknown distribution subclasses fall back to ``repr`` — adequate as
    long as their ``repr`` encodes their parameters.
    """
    if isinstance(distribution, ConstantBandwidth):
        return {"type": "constant", "capacity": distribution.capacity}
    if isinstance(distribution, UniformBandwidth):
        return {"type": "uniform", "low": distribution.low, "high": distribution.high}
    if isinstance(distribution, TwoClassBandwidth):
        return {
            "type": "two_class",
            "slow": distribution.slow_capacity,
            "fast": distribution.fast_capacity,
            "fast_fraction": distribution.fast_fraction,
        }
    if isinstance(distribution, MultiClassBandwidth):
        return {"type": "multi_class", "classes": distribution.classes}
    if isinstance(distribution, EmpiricalBandwidth):
        return {"type": "empirical", "buckets": distribution.buckets}
    return {"type": "repr", "repr": repr(distribution)}


@dataclass(frozen=True)
class SimulationJob:
    """One simulation run, described by value.

    Parameters
    ----------
    config:
        The simulation configuration.
    behaviors:
        One behaviour per peer, or a single behaviour broadcast to the whole
        population (same convention as :class:`~repro.sim.engine.Simulation`).
    groups:
        Optional group label per peer (or a single broadcast label).
    seed:
        Seed of the run's private random generator.
    """

    config: SimulationConfig
    behaviors: Tuple[PeerBehavior, ...]
    groups: Optional[Tuple[str, ...]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.behaviors:
            raise ValueError("a job needs at least one behavior")
        # Normalise list inputs so jobs are hashable/picklable values.
        if not isinstance(self.behaviors, tuple):
            object.__setattr__(self, "behaviors", tuple(self.behaviors))
        if self.groups is not None and not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def payload(self) -> Dict[str, object]:
        """Everything that determines the run outcome, as JSON-stable data."""
        config = self.config
        config_payload: Dict[str, object] = {
            "n_peers": config.n_peers,
            "rounds": config.rounds,
            "bandwidth": _bandwidth_payload(config.distribution()),
            "churn_rate": config.churn_rate,
            "requests_per_round": config.requests_per_round,
            "discovery_per_round": config.discovery_per_round,
            "warmup_rounds": config.warmup_rounds,
            "stranger_bandwidth_cap": config.stranger_bandwidth_cap,
            "history_rounds": config.history_rounds,
            "aspiration_smoothing": config.aspiration_smoothing,
        }
        # Only present for scenario runs, so every pre-scenario fingerprint
        # (and the cache entries stored under it) stays valid.
        if config.dynamics is not None and not config.dynamics.is_trivial():
            config_payload["dynamics"] = config.dynamics.as_dict()
        return {
            "config": config_payload,
            "behaviors": [behavior.as_dict() for behavior in self.behaviors],
            "groups": list(self.groups) if self.groups is not None else None,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """Content hash identifying this job (and therefore its result)."""
        blob = json.dumps(self.payload(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self) -> SimulationResult:
        """Run the simulation described by this job."""
        return Simulation(
            self.config, list(self.behaviors), groups=self.groups, seed=self.seed
        ).run()


# ---------------------------------------------------------------------- #
# result (de)serialisation for the on-disk cache
# ---------------------------------------------------------------------- #
def result_to_payload(result: SimulationResult) -> Dict[str, object]:
    """JSON-stable payload of a result (config omitted — the job carries it)."""
    return {
        "version": RESULT_PAYLOAD_VERSION,
        "records": [
            {
                "peer_id": record.peer_id,
                "group": record.group,
                "upload_capacity": record.upload_capacity,
                "behavior_label": record.behavior_label,
                "downloaded": record.downloaded,
                "uploaded": record.uploaded,
            }
            for record in result.records
        ],
        "rounds_executed": result.rounds_executed,
        "churn_events": result.churn_events,
        "total_explicit_refusals": result.total_explicit_refusals,
    }


def result_from_payload(
    payload: Dict[str, object], config: SimulationConfig
) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` cached by :func:`result_to_payload`.

    The ``config`` comes from the job being looked up, so the reconstructed
    result is indistinguishable from a fresh run.
    """
    records: List[PeerRecord] = [
        PeerRecord(
            peer_id=int(raw["peer_id"]),
            group=str(raw["group"]),
            upload_capacity=float(raw["upload_capacity"]),
            behavior_label=str(raw["behavior_label"]),
            downloaded=float(raw["downloaded"]),
            uploaded=float(raw["uploaded"]),
        )
        for raw in payload["records"]
    ]
    return SimulationResult(
        config=config,
        records=records,
        rounds_executed=int(payload["rounds_executed"]),
        churn_events=int(payload["churn_events"]),
        total_explicit_refusals=int(payload["total_explicit_refusals"]),
    )
