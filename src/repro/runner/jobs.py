"""Simulation jobs: the unit of work scheduled by the experiment runner.

A :class:`SimulationJob` is a fully-specified, picklable description of one
cycle-based simulation run — configuration, behaviours, group labels and
seed.  Two jobs with the same content produce bit-identical results (the
engine is deterministic given a seed), which is what makes the
content-addressed result cache sound: the job's :meth:`fingerprint` *is* the
result's identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bittorrent.swarm import SwarmPeerRecord, SwarmResult
from repro.sim.bandwidth import (
    BandwidthDistribution,
    ConstantBandwidth,
    EmpiricalBandwidth,
    MultiClassBandwidth,
    TwoClassBandwidth,
    UniformBandwidth,
)
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import PeerRecord

__all__ = ["SimulationJob", "result_to_payload", "result_from_payload"]

#: Bump when the cached result payload layout changes.
RESULT_PAYLOAD_VERSION = 1


def _bandwidth_payload(distribution: BandwidthDistribution) -> Dict[str, object]:
    """A lossless, JSON-stable description of a bandwidth distribution.

    ``repr`` is not enough here: :class:`EmpiricalBandwidth` collapses its
    bucket table in ``repr``, and two different tables must not share a cache
    key.  Unknown distribution subclasses fall back to ``repr`` — adequate as
    long as their ``repr`` encodes their parameters.
    """
    if isinstance(distribution, ConstantBandwidth):
        return {"type": "constant", "capacity": distribution.capacity}
    if isinstance(distribution, UniformBandwidth):
        return {"type": "uniform", "low": distribution.low, "high": distribution.high}
    if isinstance(distribution, TwoClassBandwidth):
        return {
            "type": "two_class",
            "slow": distribution.slow_capacity,
            "fast": distribution.fast_capacity,
            "fast_fraction": distribution.fast_fraction,
        }
    if isinstance(distribution, MultiClassBandwidth):
        return {"type": "multi_class", "classes": distribution.classes}
    if isinstance(distribution, EmpiricalBandwidth):
        return {"type": "empirical", "buckets": distribution.buckets}
    return {"type": "repr", "repr": repr(distribution)}


@dataclass(frozen=True)
class SimulationJob:
    """One simulation run, described by value.

    Parameters
    ----------
    config:
        The simulation configuration.
    behaviors:
        One behaviour per peer, or a single behaviour broadcast to the whole
        population (same convention as :class:`~repro.sim.engine.Simulation`).
    groups:
        Optional group label per peer (or a single broadcast label).
    seed:
        Seed of the run's private random generator.
    """

    config: SimulationConfig
    behaviors: Tuple[PeerBehavior, ...]
    groups: Optional[Tuple[str, ...]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.behaviors:
            raise ValueError("a job needs at least one behavior")
        # Normalise list inputs so jobs are hashable/picklable values.
        if not isinstance(self.behaviors, tuple):
            object.__setattr__(self, "behaviors", tuple(self.behaviors))
        if self.groups is not None and not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def payload(self) -> Dict[str, object]:
        """Everything that determines the run outcome, as JSON-stable data."""
        config = self.config
        config_payload: Dict[str, object] = {
            "n_peers": config.n_peers,
            "rounds": config.rounds,
            "bandwidth": _bandwidth_payload(config.distribution()),
            "churn_rate": config.churn_rate,
            "requests_per_round": config.requests_per_round,
            "discovery_per_round": config.discovery_per_round,
            "warmup_rounds": config.warmup_rounds,
            "stranger_bandwidth_cap": config.stranger_bandwidth_cap,
            "history_rounds": config.history_rounds,
            "aspiration_smoothing": config.aspiration_smoothing,
        }
        # Only present for scenario runs, so every pre-scenario fingerprint
        # (and the cache entries stored under it) stays valid.
        if config.dynamics is not None and not config.dynamics.is_trivial():
            config_payload["dynamics"] = config.dynamics.as_dict()
        # Population dynamics likewise only appear when non-trivial: a
        # variable-population job must never share a cache key with the
        # fixed-population job it otherwise looks like (and two variable
        # jobs differing only in, say, arrival rate must differ too).
        if config.population is not None and not config.population.is_trivial():
            config_payload["population"] = config.population.as_dict()
        return {
            "config": config_payload,
            "behaviors": [behavior.as_dict() for behavior in self.behaviors],
            "groups": list(self.groups) if self.groups is not None else None,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """Content hash identifying this job (and therefore its result)."""
        blob = json.dumps(self.payload(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self) -> SimulationResult:
        """Run the simulation described by this job.

        Dispatches to the variable-population engine when the config carries
        non-trivial population dynamics, and to the optimised fixed-
        population engine otherwise.
        """
        return simulate(
            self.config, list(self.behaviors), groups=self.groups, seed=self.seed
        )


# ---------------------------------------------------------------------- #
# result (de)serialisation for the on-disk cache
# ---------------------------------------------------------------------- #
def _swarm_result_to_payload(result: SwarmResult) -> Dict[str, object]:
    """JSON-stable payload of a packet-level swarm result.

    Distinguished from abstract-engine payloads by ``"kind": "swarm"`` — a
    key no round-engine payload has ever carried, so the two result shapes
    can never be confused in the shared cache.
    """
    records = [
        {
            "peer_id": r.peer_id,
            "variant": r.variant,
            "upload_capacity": r.upload_capacity,
            "download_time": r.download_time,
            "group": r.group,
            "capacity_class": r.capacity_class,
            "cohort": r.cohort,
            "joined_tick": r.joined_tick,
            "departed_tick": r.departed_tick,
            "downloaded_kb": r.downloaded_kb,
        }
        for r in result.records
    ]
    return {
        "version": RESULT_PAYLOAD_VERSION,
        "kind": "swarm",
        "records": records,
        "ticks_executed": result.ticks_executed,
        "total_transferred_kb": result.total_transferred_kb,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "peak_active": result.peak_active,
    }


def _swarm_result_from_payload(payload: Dict[str, object], config) -> SwarmResult:
    records = []
    for raw in payload["records"]:
        download_time = raw["download_time"]
        departed = raw.get("departed_tick")
        capacity_class = raw.get("capacity_class")
        records.append(
            SwarmPeerRecord(
                peer_id=int(raw["peer_id"]),
                variant=str(raw["variant"]),
                upload_capacity=float(raw["upload_capacity"]),
                download_time=(
                    float(download_time) if download_time is not None else None
                ),
                group=str(raw.get("group", "default")),
                capacity_class=(
                    str(capacity_class) if capacity_class is not None else None
                ),
                cohort=str(raw.get("cohort", "initial")),
                joined_tick=int(raw.get("joined_tick", 0)),
                departed_tick=int(departed) if departed is not None else None,
                downloaded_kb=float(raw.get("downloaded_kb", 0.0)),
            )
        )
    return SwarmResult(
        config=config,
        records=records,
        ticks_executed=int(payload["ticks_executed"]),
        total_transferred_kb=float(payload.get("total_transferred_kb", 0.0)),
        arrivals=int(payload.get("arrivals", 0)),
        departures=int(payload.get("departures", 0)),
        peak_active=int(payload.get("peak_active", 0)),
    )


def result_to_payload(result) -> Dict[str, object]:
    """JSON-stable payload of a result (config omitted — the job carries it).

    Fixed-population results serialise exactly as before (every pinned
    fingerprint stays valid); variable-population results — recognised by a
    recorded active-count timeline — additionally carry the per-record
    identity lifecycle and a ``population`` summary block.  Swarm results
    get their own payload shape, tagged ``"kind": "swarm"``.
    """
    if isinstance(result, SwarmResult):
        return _swarm_result_to_payload(result)
    variable = result.active_counts is not None
    records = []
    for record in result.records:
        raw: Dict[str, object] = {
            "peer_id": record.peer_id,
            "group": record.group,
            "upload_capacity": record.upload_capacity,
            "behavior_label": record.behavior_label,
            "downloaded": record.downloaded,
            "uploaded": record.uploaded,
        }
        if variable:
            raw["cohort"] = record.cohort
            raw["joined_round"] = record.joined_round
            raw["departed_round"] = record.departed_round
            raw["rounds_present"] = record.rounds_present
        records.append(raw)
    payload: Dict[str, object] = {
        "version": RESULT_PAYLOAD_VERSION,
        "records": records,
        "rounds_executed": result.rounds_executed,
        "churn_events": result.churn_events,
        "total_explicit_refusals": result.total_explicit_refusals,
    }
    if variable:
        payload["population"] = {
            "active_counts": list(result.active_counts),
            "total_arrivals": result.total_arrivals,
            "total_departures": result.total_departures,
        }
    return payload


def result_from_payload(payload: Dict[str, object], config):
    """Rebuild a result cached by :func:`result_to_payload`.

    The ``config`` comes from the job being looked up, so the reconstructed
    result is indistinguishable from a fresh run.  Swarm payloads (tagged
    ``"kind": "swarm"``) rebuild a :class:`~repro.bittorrent.swarm.SwarmResult`;
    everything else rebuilds a :class:`SimulationResult`.
    """
    if payload.get("kind") == "swarm":
        return _swarm_result_from_payload(payload, config)
    records: List[PeerRecord] = []
    for raw in payload["records"]:
        departed = raw.get("departed_round")
        present = raw.get("rounds_present")
        records.append(
            PeerRecord(
                peer_id=int(raw["peer_id"]),
                group=str(raw["group"]),
                upload_capacity=float(raw["upload_capacity"]),
                behavior_label=str(raw["behavior_label"]),
                downloaded=float(raw["downloaded"]),
                uploaded=float(raw["uploaded"]),
                cohort=str(raw.get("cohort", "initial")),
                joined_round=int(raw.get("joined_round", 0)),
                departed_round=int(departed) if departed is not None else None,
                rounds_present=int(present) if present is not None else None,
            )
        )
    population = payload.get("population")
    return SimulationResult(
        config=config,
        records=records,
        rounds_executed=int(payload["rounds_executed"]),
        churn_events=int(payload["churn_events"]),
        total_explicit_refusals=int(payload["total_explicit_refusals"]),
        active_counts=(
            tuple(int(c) for c in population["active_counts"])
            if population is not None
            else None
        ),
        total_arrivals=int(population["total_arrivals"]) if population else 0,
        total_departures=int(population["total_departures"]) if population else 0,
    )
