"""Execution backends for the experiment runner.

Two interchangeable strategies execute a batch of
:class:`~repro.runner.jobs.SimulationJob`\\ s:

* :class:`SerialExecutor` — run in-process, in order.  Zero overhead, always
  available; the default.
* :class:`ProcessExecutor` — fan the batch out over a
  :mod:`multiprocessing` pool.  Jobs and results are plain picklable values,
  and every job carries its own seed, so results are identical to a serial
  run regardless of worker count or scheduling (pinned by the runner tests).

Both return results **in job order**, which is what lets callers aggregate
(sums, win counts) in exactly the order the pre-runner code did — keeping
floating-point accumulation, and therefore every figure, bit-identical.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Protocol, Sequence

from repro.runner.jobs import SimulationJob
from repro.sim.engine import SimulationResult

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "JobExecutionError",
    "default_job_count",
]


class JobExecutionError(RuntimeError):
    """A job failed (or its worker died) during batch execution.

    Carries the failed job's content ``fingerprint`` so a thousand-job batch
    failure points at the one job to re-run, instead of an anonymous
    traceback from somewhere inside a worker.
    """

    def __init__(self, message: str, fingerprint: Optional[str] = None):
        super().__init__(message)
        self.fingerprint = fingerprint

    def __reduce__(self):
        # Exceptions pickle by args; keep the fingerprint across the
        # worker -> parent process boundary.
        return (type(self), (self.args[0], self.fingerprint))


def describe_job(job) -> str:
    """A short human-readable identity for a job, for error messages."""
    spec = getattr(job, "spec", None)
    if spec is not None and getattr(spec, "name", None):
        return f"scenario {spec.name!r}, seed {job.seed}"
    config = getattr(job, "config", None)
    if config is not None and hasattr(config, "n_peers"):
        return (
            f"{config.n_peers} peers x {getattr(config, 'rounds', '?')} rounds, "
            f"seed {job.seed}"
        )
    return f"seed {getattr(job, 'seed', None)}"


def default_job_count() -> int:
    """Worker count used when the caller asks for "all cores".

    Respects the process's CPU affinity mask where the platform exposes it
    (``os.sched_getaffinity``), so cgroup-limited CI containers get the
    cores they may actually run on rather than the machine's full count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class Executor(Protocol):
    """Anything that can execute a batch of jobs in order."""

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Execute ``jobs`` and return their results in the same order."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Execute jobs one after another in the calling process."""

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        return [job.execute() for job in jobs]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SerialExecutor()"


def _execute_job(job: SimulationJob) -> SimulationResult:
    """Module-level trampoline so pool workers can unpickle the callable."""
    try:
        return job.execute()
    except Exception as error:
        # Attach the job's identity: a bare worker exception says nothing
        # about *which* of a thousand batched jobs failed.
        fingerprint = job.fingerprint()
        raise JobExecutionError(
            f"job {fingerprint[:12]} ({describe_job(job)}) failed: "
            f"{type(error).__name__}: {error}",
            fingerprint=fingerprint,
        ) from error


class ProcessExecutor:
    """Execute jobs on a process pool.

    Parameters
    ----------
    processes:
        Worker count; ``None`` uses every available core.
    chunksize:
        Jobs handed to a worker per dispatch; ``None`` picks a size that
        gives each worker a handful of dispatches per batch (good
        load-balancing without drowning in IPC).

    A pool is created per :meth:`run` call and torn down afterwards, so no
    worker processes outlive a batch.  Batches smaller than two jobs (or a
    single worker) short-circuit to in-process execution.

    Failure behaviour: a job that raises surfaces as a
    :class:`JobExecutionError` naming the job's fingerprint and scenario,
    and a worker that *dies* mid-batch (OOM-killed, segfault, ``SIGKILL``)
    raises instead of hanging the batch forever — the pool backend is
    :class:`concurrent.futures.ProcessPoolExecutor`, whose broken-pool
    detection ``multiprocessing.Pool.map`` lacks.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: Optional[int] = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.processes = processes if processes is not None else default_job_count()
        self.chunksize = chunksize

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        if len(jobs) < 2 or self.processes < 2:
            return [job.execute() for job in jobs]
        workers = min(self.processes, len(jobs))
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            try:
                return list(pool.map(_execute_job, jobs, chunksize=chunksize))
            except BrokenProcessPool as error:
                raise JobExecutionError(
                    f"a worker process died mid-batch while executing "
                    f"{len(jobs)} jobs (killed or crashed); the batch is "
                    f"incomplete — re-run it (cached results are kept)"
                ) from error

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProcessExecutor(processes={self.processes})"
