"""Execution backends for the experiment runner.

Two interchangeable strategies execute a batch of
:class:`~repro.runner.jobs.SimulationJob`\\ s:

* :class:`SerialExecutor` — run in-process, in order.  Zero overhead, always
  available; the default.
* :class:`ProcessExecutor` — fan the batch out over a
  :mod:`multiprocessing` pool.  Jobs and results are plain picklable values,
  and every job carries its own seed, so results are identical to a serial
  run regardless of worker count or scheduling (pinned by the runner tests).

Both return results **in job order**, which is what lets callers aggregate
(sums, win counts) in exactly the order the pre-runner code did — keeping
floating-point accumulation, and therefore every figure, bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Protocol, Sequence

from repro.runner.jobs import SimulationJob
from repro.sim.engine import SimulationResult

__all__ = ["Executor", "SerialExecutor", "ProcessExecutor", "default_job_count"]


def default_job_count() -> int:
    """Worker count used when the caller asks for "all cores".

    Respects the process's CPU affinity mask where the platform exposes it
    (``os.sched_getaffinity``), so cgroup-limited CI containers get the
    cores they may actually run on rather than the machine's full count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class Executor(Protocol):
    """Anything that can execute a batch of jobs in order."""

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Execute ``jobs`` and return their results in the same order."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Execute jobs one after another in the calling process."""

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        return [job.execute() for job in jobs]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SerialExecutor()"


def _execute_job(job: SimulationJob) -> SimulationResult:
    """Module-level trampoline so pool workers can unpickle the callable."""
    return job.execute()


class ProcessExecutor:
    """Execute jobs on a :class:`multiprocessing.Pool`.

    Parameters
    ----------
    processes:
        Worker count; ``None`` uses every available core.
    chunksize:
        Jobs handed to a worker per dispatch; ``None`` picks a size that
        gives each worker a handful of dispatches per batch (good
        load-balancing without drowning in IPC).

    A pool is created per :meth:`run` call and torn down afterwards, so no
    worker processes outlive a batch.  Batches smaller than two jobs (or a
    single worker) short-circuit to in-process execution.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: Optional[int] = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.processes = processes if processes is not None else default_job_count()
        self.chunksize = chunksize

    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        if len(jobs) < 2 or self.processes < 2:
            return [job.execute() for job in jobs]
        workers = min(self.processes, len(jobs))
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = max(1, len(jobs) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            return pool.map(_execute_job, jobs, chunksize=chunksize)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProcessExecutor(processes={self.processes})"
