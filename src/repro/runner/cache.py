"""Content-addressed on-disk cache for simulation results.

Results are stored as one JSON file per job under
``<root>/<fp[:2]>/<fp>.json`` where ``fp`` is the job's SHA-256 content
fingerprint (config + behaviours + groups + seed).  Because the engine is
deterministic, a cache hit is *exactly* the result a fresh run would produce
— JSON float serialisation round-trips bit-exactly — a property pinned by the
runner test-suite.

Writes are atomic (temp file + ``os.replace``) so concurrent runner
processes sharing one cache directory can never observe a torn file; the
worst case under a write race is both processes writing the same content.
Entries that are corrupt anyway (a disk that filled up, a process killed
mid-``fsync``, stray garbage) are treated as misses and *quarantined* — the
damaged file is renamed to ``<name>.corrupt`` so it is never re-parsed and
cannot shadow the fresh result the re-run stores.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.runner.jobs import (
    RESULT_PAYLOAD_VERSION,
    SimulationJob,
    result_from_payload,
    result_to_payload,
)
from repro.sim.engine import SimulationResult
from repro.telemetry.metrics import NULL_METRICS

__all__ = ["ResultCache"]


class ResultCache:
    """Disk-backed, content-addressed store of simulation results.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first store).

    The local ``hits``/``misses`` counters always run; ``metrics`` is an
    optional :class:`~repro.telemetry.metrics.MetricsRegistry` (assigned by
    telemetry-enabled owners like service workers) that additionally feeds
    the cross-process ``cache.*`` counters.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.metrics = NULL_METRICS

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def path_for(self, fingerprint: str) -> Path:
        """The file a result with this fingerprint is stored at."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def __len__(self) -> int:
        """Number of results currently stored."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # ------------------------------------------------------------------ #
    # get / put
    # ------------------------------------------------------------------ #
    def get(
        self, job: SimulationJob, fingerprint: Optional[str] = None
    ) -> Optional[SimulationResult]:
        """The cached result for ``job``, or ``None`` on a miss.

        ``fingerprint`` may be passed when the caller already computed it
        (the runner does, to dedupe batches).
        """
        fingerprint = fingerprint or job.fingerprint()
        path = self.path_for(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # Truncated or garbage entry (disk full, killed process):
            # quarantine it and miss; the re-run stores a fresh result.
            self._quarantine(path)
            self._miss()
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            self._miss()
            return None
        if payload.get("version") != RESULT_PAYLOAD_VERSION:
            self._miss()
            return None
        try:
            # Jobs outside the simulation families (service fault-injection
            # doubles, future job types) may carry their own payload codec;
            # simulation jobs use the shared one.
            loader = getattr(job, "result_from_payload", None)
            if loader is not None:
                result = loader(payload)
            else:
                result = result_from_payload(payload, job.config)
        except (KeyError, TypeError, ValueError):
            # Parseable JSON with a mangled payload is corruption too.
            self._quarantine(path)
            self._miss()
            return None
        self.hits += 1
        self.metrics.inc("cache.hits")
        return result

    def _miss(self) -> None:
        self.misses += 1
        self.metrics.inc("cache.misses")

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort, never raises)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
        self.metrics.inc("cache.quarantined")

    def put(
        self,
        job: SimulationJob,
        result: SimulationResult,
        fingerprint: Optional[str] = None,
    ) -> Path:
        """Store ``result`` under ``job``'s fingerprint and return the path."""
        fingerprint = fingerprint or job.fingerprint()
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        dumper = getattr(job, "result_to_payload", None)
        payload = dumper(result) if dumper is not None else result_to_payload(result)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            # Cover *any* OSError from the unlink, not just a missing file:
            # on exotic filesystems ``os.replace`` itself can fail after a
            # successful dump (EXDEV, EPERM, quota), and the temp file must
            # not leak just because its cleanup hit e.g. a permission error.
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def corrupt_count(self) -> int:
        """Number of quarantined ``.corrupt`` entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.corrupt"))

    def clear(self) -> int:
        """Delete every stored result *and* quarantined ``.corrupt`` file.

        Returns the number of files removed (results plus quarantine
        entries); without the quarantine sweep, ``.corrupt`` files — which
        ``__len__`` never counts — would accumulate forever.
        """
        removed = 0
        if not self.root.exists():
            return 0
        for pattern in ("*/*.json", "*/*.corrupt"):
            for entry in self.root.glob(pattern):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ResultCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"
