"""Parallel, cached experiment execution.

The runner subsystem turns the library's "run thousands of simulations"
workloads (PRA performance sweeps, robustness/aggressiveness tournaments,
heuristic search, figure regeneration) into batches of deterministic,
content-addressed :class:`~repro.runner.jobs.SimulationJob`\\ s executed by an
:class:`~repro.runner.runner.ExperimentRunner`:

* **batch dedupe** — identical jobs inside one batch are simulated once;
* **content-addressed disk cache** — a job's SHA-256 fingerprint (config +
  behaviours + groups + seed) addresses its result; warm sweeps are free;
* **pluggable execution** — serial in-process by default, a
  ``multiprocessing`` pool with ``jobs > 1`` (``repro.cli --jobs N`` or
  ``REPRO_JOBS=N``).

Determinism is the load-bearing property: every job derives its own seed, so
serial, parallel and cached execution produce bit-identical results — the
equivalence and property test suites enforce this.
"""

from repro.runner.cache import ResultCache
from repro.runner.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    default_job_count,
)
from repro.runner.jobs import SimulationJob, result_from_payload, result_to_payload
from repro.runner.runner import (
    ExperimentRunner,
    RunnerStats,
    configure_default_runner,
    get_default_runner,
    set_default_runner,
    using_runner,
)

__all__ = [
    "SimulationJob",
    "ResultCache",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "default_job_count",
    "ExperimentRunner",
    "RunnerStats",
    "get_default_runner",
    "set_default_runner",
    "configure_default_runner",
    "using_runner",
    "result_to_payload",
    "result_from_payload",
]
