"""The experiment runner: batch scheduling + dedupe + result cache.

:class:`ExperimentRunner` is the single entry point through which the PRA
machinery (performance sweeps, tournaments, heuristic search, the CLI) runs
simulations.  Given a batch of :class:`~repro.runner.jobs.SimulationJob`\\ s
it:

1. **dedupes** the batch by content fingerprint (tournaments re-run the same
   (pair, seed) encounter under several measures; identical jobs are
   simulated once and fanned back out),
2. **consults the cache** (optional, content-addressed, on disk) for each
   unique job,
3. **executes the misses** on its executor — serial in-process by default,
   a ``multiprocessing`` pool when parallelism was requested,
4. **stores** fresh results back into the cache and returns all results in
   job order.

Because every job is deterministic and carries its own derived seed, the
observable results are identical whichever executor runs them and whether or
not the cache was warm — "approximate fast, verify exactly" becomes simply
"go fast, stay exact".

A process-wide **default runner** (configurable with
:func:`configure_default_runner`, the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables, or the CLI's ``--jobs`` / ``--cache-dir`` flags) is
what the library uses when no explicit runner is passed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.executors import Executor, ProcessExecutor, SerialExecutor
from repro.runner.jobs import SimulationJob
from repro.sim.engine import SimulationResult
from repro.utils.logging import get_logger

__all__ = [
    "ExperimentRunner",
    "RunnerStats",
    "get_default_runner",
    "set_default_runner",
    "configure_default_runner",
    "using_runner",
    "jobs_from_env",
]

_LOGGER = get_logger("runner")

#: Environment knobs honoured by :func:`get_default_runner`.
ENV_JOBS = "REPRO_JOBS"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class RunnerStats:
    """A point-in-time snapshot of a runner's cumulative counters.

    Counters on a shared (process-wide) runner accumulate across every
    batch it has ever executed; subtracting two snapshots
    (``after - before``) isolates what one invocation actually did — the
    atlas uses this to prove that re-running a grown grid only simulates
    the new cells.
    """

    executed: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __sub__(self, other: "RunnerStats") -> "RunnerStats":
        return RunnerStats(
            executed=self.executed - other.executed,
            deduplicated=self.deduplicated - other.deduplicated,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
        )


class ExperimentRunner:
    """Process-parallel, disk-cached executor of simulation job batches.

    Parameters
    ----------
    jobs:
        Parallel worker count.  ``1`` (default) executes in-process; larger
        values use a ``multiprocessing`` pool; ``0`` means "all cores".
        Ignored when an explicit ``executor`` is given.
    cache_dir:
        Directory of the content-addressed result cache; ``None`` disables
        caching.  Ignored when an explicit ``cache`` is given.
    executor:
        Explicit execution backend (overrides ``jobs``).
    cache:
        Explicit :class:`~repro.runner.cache.ResultCache` (overrides
        ``cache_dir``).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
    ):
        if executor is not None:
            self.executor: Executor = executor
        elif jobs == 1:
            self.executor = SerialExecutor()
        else:
            self.executor = ProcessExecutor(processes=None if jobs == 0 else jobs)
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif cache_dir is not None:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None
        self.jobs_executed = 0
        self.jobs_deduplicated = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Execute ``jobs`` (cache- and dedupe-aware); results in job order."""
        jobs = list(jobs)
        if not jobs:
            return []

        # Dedupe by content fingerprint.
        order: List[str] = []
        indices: Dict[str, List[int]] = {}
        unique: Dict[str, SimulationJob] = {}
        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint()
            if fingerprint not in indices:
                indices[fingerprint] = []
                unique[fingerprint] = job
                order.append(fingerprint)
            indices[fingerprint].append(index)
        self.jobs_deduplicated += len(jobs) - len(unique)

        resolved: Dict[str, SimulationResult] = {}
        pending: List[str] = []
        if self.cache is not None:
            # An indexed cache (repro.service.IndexedResultStore) answers
            # "which of these are stored?" in O(1) queries; only the actual
            # hits then read their payload files.  A plain cache probes one
            # file per fingerprint, as before.
            probe = getattr(self.cache, "probe_many", None)
            known = probe(order) if probe is not None else None
            for fingerprint in order:
                if known is not None and fingerprint not in known:
                    self.cache.misses += 1
                    pending.append(fingerprint)
                    continue
                cached = self.cache.get(unique[fingerprint], fingerprint)
                if cached is not None:
                    resolved[fingerprint] = cached
                else:
                    pending.append(fingerprint)
        else:
            pending = order

        if pending:
            _LOGGER.info(
                "executing %d simulations (%d cached, %d duplicate) on %r",
                len(pending),
                len(resolved),
                len(jobs) - len(unique),
                self.executor,
            )
            fresh = self.executor.run([unique[fp] for fp in pending])
            for fingerprint, result in zip(pending, fresh):
                resolved[fingerprint] = result
                if self.cache is not None:
                    self.cache.put(unique[fingerprint], result, fingerprint)
            self.jobs_executed += len(pending)

        results: List[Optional[SimulationResult]] = [None] * len(jobs)
        for fingerprint, positions in indices.items():
            result = resolved[fingerprint]
            for position in positions:
                results[position] = result
        return results  # type: ignore[return-value]

    def run_one(self, job: SimulationJob) -> SimulationResult:
        """Execute a single job through the cache."""
        return self.run([job])[0]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def stats(self) -> RunnerStats:
        """Snapshot of the cumulative counters (subtract snapshots for deltas)."""
        return RunnerStats(
            executed=self.jobs_executed,
            deduplicated=self.jobs_deduplicated,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExperimentRunner(executor={self.executor!r}, cache={self.cache!r}, "
            f"executed={self.jobs_executed})"
        )


# ---------------------------------------------------------------------- #
# process-wide default runner
# ---------------------------------------------------------------------- #
_default_runner: Optional[ExperimentRunner] = None


def jobs_from_env() -> int:
    """The worker count requested via ``REPRO_JOBS`` (validated; default 1)."""
    raw = os.environ.get(ENV_JOBS, "1")
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"{ENV_JOBS} must be an integer, got {raw!r}") from None
    if jobs < 0:
        raise ValueError(f"{ENV_JOBS} must be >= 0, got {jobs}")
    return jobs


def get_default_runner() -> ExperimentRunner:
    """The process-wide runner used when no explicit runner is passed.

    Created on first use from the environment: ``REPRO_JOBS`` selects the
    worker count (``1`` → serial, ``0`` → all cores) and ``REPRO_CACHE_DIR``
    enables the on-disk result cache.
    """
    global _default_runner
    if _default_runner is None:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or None
        _default_runner = ExperimentRunner(jobs=jobs_from_env(), cache_dir=cache_dir)
    return _default_runner


def set_default_runner(runner: Optional[ExperimentRunner]) -> None:
    """Replace the process-wide default runner (``None`` resets to lazy env init)."""
    global _default_runner
    _default_runner = runner


def configure_default_runner(
    jobs: int = 1, cache_dir: Optional[Union[str, Path]] = None
) -> ExperimentRunner:
    """Build, install and return a default runner with the given settings."""
    runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir)
    set_default_runner(runner)
    return runner


@contextmanager
def using_runner(runner: ExperimentRunner):
    """Temporarily install ``runner`` as the process default (tests, scripts)."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    try:
        yield runner
    finally:
        _default_runner = previous
