"""Analytical model of the BitTorrent Dilemma (Section 2.2, 2.3 and Appendix).

The paper derives, for a peer ``c`` in a given bandwidth class, the expected
number of *games won* per unchoke period — where winning a game means
obtaining cooperation (an upload) from another peer.  Wins come in two kinds:

* **reciprocation wins** (``Er[X -> c]``): games won because peers in class
  ``X`` reciprocate to ``c`` through their regular unchoke slots, and
* **free game wins** (``E[X -> c]``): games won because peers in class ``X``
  optimistically unchoke ``c`` (first-move cooperation of TFT), giving ``c``
  a free win.

``X`` ranges over ``A`` (classes above ``c``'s class), ``B`` (classes below)
and ``C`` (``c``'s own class).  The notation follows Table 1 of the paper:

========  =====================================================================
``NA``     number of TFT players in classes above ``c``'s class
``NB``     number of TFT players in classes below ``c``'s class
``NC``     number of TFT players in ``c``'s class (including ``c``)
``Ur``     number of regular unchoke slots
``Nr``     ``NA + NB + NC - Ur - 1``
========  =====================================================================

Two protocols are modelled:

* **BitTorrent** (TFT with fastest-first reciprocation): peers reciprocate to
  faster classes, so a peer wins no reciprocation games from classes above
  itself but receives free wins from their optimistic unchokes.
* **Birds** (proximity-based reciprocation, Section 2.3): peers only
  reciprocate within their own class.

The Appendix extends the model to *deviation analysis*: a single Birds peer
in a swarm of BitTorrent peers wins more games than the BitTorrent residents
(hence BitTorrent is **not** a Nash equilibrium under this abstraction),
whereas a single BitTorrent peer in a swarm of Birds peers wins fewer games
than the Birds residents (hence Birds **is** a Nash equilibrium).  This
module implements those formulas directly and exposes boolean verdict helpers
used by the Section 2 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gametheory.classes import ClassPopulation

__all__ = [
    "ExpectedWins",
    "BitTorrentExpectedWins",
    "BirdsExpectedWins",
    "DeviationAnalysis",
    "SwarmModel",
    "bittorrent_is_nash_equilibrium",
    "birds_is_nash_equilibrium",
]


@dataclass(frozen=True)
class ExpectedWins:
    """Expected per-period game wins of a peer, broken down by source class.

    ``reciprocation[x]`` is ``Er[X -> c]`` and ``free[x]`` is ``E[X -> c]``
    for ``x`` in ``{"above", "below", "same"}``.
    """

    reciprocation: Dict[str, float]
    free: Dict[str, float]

    @property
    def total_reciprocation(self) -> float:
        return sum(self.reciprocation.values())

    @property
    def total_free(self) -> float:
        return sum(self.free.values())

    @property
    def total(self) -> float:
        """Total expected wins per period (reciprocation + free)."""
        return self.total_reciprocation + self.total_free


class BitTorrentExpectedWins(ExpectedWins):
    """Expected wins of a peer following BitTorrent's TFT in a homogeneous swarm."""


class BirdsExpectedWins(ExpectedWins):
    """Expected wins of a peer following Birds in a homogeneous swarm."""


@dataclass(frozen=True)
class DeviationAnalysis:
    """Outcome of the Appendix single-deviant analysis for one class.

    ``resident_protocol`` is the protocol run by the ``N - 1`` swarm members,
    ``deviant_protocol`` the protocol of the single deviating peer placed in
    the class at ``class_index``.  ``advantage`` is the deviant's expected
    total wins minus a resident's (in the same class); a positive advantage
    means deviating pays, i.e. the resident protocol is not a Nash
    equilibrium.
    """

    resident_protocol: str
    deviant_protocol: str
    class_index: int
    deviant_wins: ExpectedWins
    resident_wins: ExpectedWins

    @property
    def advantage(self) -> float:
        return self.deviant_wins.total - self.resident_wins.total

    @property
    def deviation_profitable(self) -> bool:
        """Whether the deviant strictly outperforms the residents."""
        return self.advantage > 0.0


class SwarmModel:
    """The analytical multi-class swarm model of Section 2.2.

    Parameters
    ----------
    population:
        Bandwidth-class structure of the swarm.
    regular_unchoke_slots:
        ``Ur``, the number of peers a player reciprocates with simultaneously.
        The number of optimistic unchoke slots is fixed at 1, as in the paper.

    Notes
    -----
    The derivation assumes ``NA > Ur`` (enough faster peers that none of them
    reciprocates down) and ``NC - 1 >= Ur`` (enough same-class peers to fill
    the unchoke slots).  :meth:`assumption_violations` reports which of these
    are violated for a given class; the formulas are still evaluated so the
    caller can explore edge cases, but the Nash-equilibrium verdicts in the
    paper only apply where the assumptions hold.
    """

    def __init__(self, population: ClassPopulation, regular_unchoke_slots: int = 4):
        if regular_unchoke_slots < 1:
            raise ValueError("regular_unchoke_slots (Ur) must be >= 1")
        self.population = population
        self.ur = int(regular_unchoke_slots)
        total = population.total_peers
        if total - self.ur - 1 <= 0:
            raise ValueError(
                "population too small: NA + NB + NC - Ur - 1 must be positive"
            )

    # ------------------------------------------------------------------ #
    # shared quantities
    # ------------------------------------------------------------------ #
    def aggregates(self, class_index: int) -> Dict[str, int]:
        """Return ``{"NA": ..., "NB": ..., "NC": ...}`` for ``class_index``."""
        na, nb, nc = self.population.aggregates(class_index)
        return {"NA": na, "NB": nb, "NC": nc}

    def nr(self, class_index: int) -> int:
        """``Nr = NA + NB + NC - Ur - 1`` (identical for every class)."""
        na, nb, nc = self.population.aggregates(class_index)
        return na + nb + nc - self.ur - 1

    def assumption_violations(self, class_index: int) -> List[str]:
        """List of model assumptions violated for the class at ``class_index``."""
        na, _nb, nc = self.population.aggregates(class_index)
        problems: List[str] = []
        if class_index < len(self.population) - 1 and na <= self.ur:
            problems.append(
                f"NA ({na}) should exceed Ur ({self.ur}) for classes with faster peers above"
            )
        if nc - 1 < self.ur:
            problems.append(
                f"NC - 1 ({nc - 1}) should be at least Ur ({self.ur}) to fill unchoke slots in-class"
            )
        return problems

    def _free_win_probability(self, class_index: int) -> float:
        """``E[A -> c] = NA / Nr`` — probability-weighted free wins from above."""
        na, _nb, _nc = self.population.aggregates(class_index)
        return na / self.nr(class_index)

    def _k(self, class_index: int, slots: Optional[int] = None) -> float:
        """The correction term ``K`` of equation (1).

        ``K = 1 - ((1 - E[A -> c]) (1 - 1/Ur))**slots`` with ``slots = Ur`` by
        default; the Appendix also uses the exponent ``Ur - 1`` (``K'``).
        """
        exponent = self.ur if slots is None else slots
        e_a = self._free_win_probability(class_index)
        base = (1.0 - e_a) * (1.0 - 1.0 / self.ur)
        return 1.0 - base**exponent

    # ------------------------------------------------------------------ #
    # homogeneous swarms (Sections 2.2 and 2.3)
    # ------------------------------------------------------------------ #
    def bittorrent_expected_wins(self, class_index: int) -> BitTorrentExpectedWins:
        """Expected wins of a BitTorrent peer in an all-BitTorrent swarm."""
        na, nb, nc = self.population.aggregates(class_index)
        nr = self.nr(class_index)
        e_a = na / nr
        er_b = nb / nr
        k = self._k(class_index)
        er_c = self.ur - e_a - k
        e_c = (nc - 1 - er_c) / nr
        return BitTorrentExpectedWins(
            reciprocation={"above": 0.0, "below": er_b, "same": er_c},
            free={"above": e_a, "below": nb / nr, "same": e_c},
        )

    def birds_expected_wins(self, class_index: int) -> BirdsExpectedWins:
        """Expected wins of a Birds peer in an all-Birds swarm."""
        na, nb, nc = self.population.aggregates(class_index)
        nr = self.nr(class_index)
        e_a = na / nr
        erb_c = float(self.ur)
        eb_c = (nc - 1 - self.ur) / nr
        return BirdsExpectedWins(
            reciprocation={"above": 0.0, "below": 0.0, "same": erb_c},
            free={"above": e_a, "below": nb / nr, "same": eb_c},
        )

    # ------------------------------------------------------------------ #
    # deviation analysis (Appendix)
    # ------------------------------------------------------------------ #
    def birds_deviant_in_bittorrent_swarm(self, class_index: int) -> DeviationAnalysis:
        """One Birds peer among ``N - 1`` BitTorrent peers (Appendix, part 1).

        Returns the expected wins of the Birds deviant and of a BitTorrent
        resident in the same class.  Per the paper, the deviant wins more
        games, which shows BitTorrent is not a Nash equilibrium under this
        abstraction.
        """
        na, nb, nc = self.population.aggregates(class_index)
        nr = self.nr(class_index)
        e_a = na / nr
        k = self._k(class_index)
        k_prime = self._k(class_index, slots=self.ur - 1) if self.ur > 1 else 0.0
        nc_prime = nc - 1
        if nc_prime < 1:
            raise ValueError("the deviant's class must contain at least 2 peers")

        # Reciprocation wins within class C.
        erb_c_deviant = self.ur - k
        er_c_resident = self.ur - k - e_a - (self.ur / nc_prime) * (k + k_prime)

        # Free game wins within class C.
        eb_c_deviant = (nc_prime / nc) * (nc - er_c_resident) / nr
        e_c_resident = eb_c_deviant + (nc - erb_c_deviant) / (nc * nr)

        deviant = ExpectedWins(
            reciprocation={"above": 0.0, "below": nb / nr, "same": erb_c_deviant},
            free={"above": e_a, "below": nb / nr, "same": eb_c_deviant},
        )
        resident = ExpectedWins(
            reciprocation={"above": 0.0, "below": nb / nr, "same": er_c_resident},
            free={"above": e_a, "below": nb / nr, "same": e_c_resident},
        )
        return DeviationAnalysis(
            resident_protocol="BitTorrent",
            deviant_protocol="Birds",
            class_index=class_index,
            deviant_wins=deviant,
            resident_wins=resident,
        )

    def bittorrent_deviant_in_birds_swarm(self, class_index: int) -> DeviationAnalysis:
        """One BitTorrent peer among ``N - 1`` Birds peers (Appendix, part 2).

        Returns the expected wins of the BitTorrent deviant and of a Birds
        resident in the same class.  Per the paper the residents win more
        games, which shows Birds is a Nash equilibrium.
        """
        na, nb, nc = self.population.aggregates(class_index)
        nr = self.nr(class_index)
        e_a = na / nr
        nc_prime = nc - 1
        if nc_prime < 1:
            raise ValueError("the deviant's class must contain at least 2 peers")

        # Reciprocation wins within class C.  Neither protocol receives
        # reciprocation from other classes in an (almost) all-Birds swarm.
        erb_c_resident = self.ur - (self.ur / nc_prime) * e_a
        er_c_deviant = self.ur - e_a

        # Free game wins within class C; the formulas reference the
        # homogeneous-swarm values Er[C -> c] and ErB[C -> c].
        er_c_homog = self.bittorrent_expected_wins(class_index).reciprocation["same"]
        erb_c_homog = self.birds_expected_wins(class_index).reciprocation["same"]
        e_c_deviant = (nc_prime / nc) * (nc_prime - erb_c_homog) / nr
        eb_c_resident = e_c_deviant + (nc_prime - er_c_homog) / (nc_prime * nr)

        deviant = ExpectedWins(
            reciprocation={"above": 0.0, "below": 0.0, "same": er_c_deviant},
            free={"above": e_a, "below": nb / nr, "same": e_c_deviant},
        )
        resident = ExpectedWins(
            reciprocation={"above": 0.0, "below": 0.0, "same": erb_c_resident},
            free={"above": e_a, "below": nb / nr, "same": eb_c_resident},
        )
        return DeviationAnalysis(
            resident_protocol="Birds",
            deviant_protocol="BitTorrent",
            class_index=class_index,
            deviant_wins=deviant,
            resident_wins=resident,
        )


def bittorrent_is_nash_equilibrium(model: SwarmModel, class_index: int = 0) -> bool:
    """Whether BitTorrent is a Nash equilibrium against a Birds deviation.

    Evaluates the Appendix deviation analysis for the class at
    ``class_index`` (default: the slowest class, where the paper's assumptions
    are easiest to satisfy).  Returns ``False`` whenever a Birds deviant
    strictly gains, which is the paper's result for swarms satisfying the
    model assumptions.
    """
    analysis = model.birds_deviant_in_bittorrent_swarm(class_index)
    return not analysis.deviation_profitable


def birds_is_nash_equilibrium(model: SwarmModel, class_index: int = 0) -> bool:
    """Whether Birds is a Nash equilibrium against a BitTorrent deviation.

    Returns ``True`` whenever the BitTorrent deviant does not strictly gain,
    which is the paper's result for swarms satisfying the model assumptions.
    """
    analysis = model.bittorrent_deviant_in_birds_swarm(class_index)
    return not analysis.deviation_profitable
