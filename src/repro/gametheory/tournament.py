"""Axelrod-style round-robin tournaments of iterated-game strategies.

The paper's Design Space Analysis is explicitly "inspired by the work of
Axelrod", whose computer tournaments pitted every submitted strategy against
every other (and itself) in an iterated Prisoner's Dilemma.  This module
implements that tournament as a reusable component: it is used in tests and
examples to demonstrate the lineage between Axelrod's tournament and the PRA
quantification (which generalises the idea from strategies in a matrix game
to full protocols in a simulated P2P system).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gametheory.games import NormalFormGame, prisoners_dilemma
from repro.gametheory.iterated import IteratedMatch, MatchResult
from repro.gametheory.strategies import Strategy
from repro.utils.rng import RngFactory

__all__ = ["TournamentResult", "AxelrodTournament"]


@dataclass
class TournamentResult:
    """Aggregated outcome of a round-robin tournament."""

    strategy_names: List[str]
    total_scores: Dict[str, float]
    rounds_played: Dict[str, int]
    match_results: List[MatchResult] = field(default_factory=list)

    def average_scores(self) -> Dict[str, float]:
        """Average per-round score of each strategy across all its matches."""
        return {
            name: (self.total_scores[name] / self.rounds_played[name]
                   if self.rounds_played[name] else 0.0)
            for name in self.strategy_names
        }

    def ranking(self) -> List[Tuple[str, float]]:
        """Strategies ordered by decreasing average score."""
        return sorted(
            self.average_scores().items(), key=lambda item: item[1], reverse=True
        )

    def winner(self) -> str:
        """Name of the top-ranked strategy."""
        return self.ranking()[0][0]


class AxelrodTournament:
    """Round-robin iterated-game tournament.

    Every strategy plays every other strategy (and, optionally, itself) for a
    fixed number of rounds per match and a number of repetitions per pairing.

    Parameters
    ----------
    strategies:
        The participating strategies.  Names must be unique.
    game:
        Symmetric two-action stage game; defaults to the Prisoner's Dilemma.
    rounds:
        Rounds per match.
    repetitions:
        Number of independent matches per pairing (relevant when strategies
        or noise are stochastic).
    noise:
        Per-action flip probability passed to every match.
    include_self_play:
        Whether each strategy also plays a copy of itself (as in Axelrod's
        original tournament).
    seed:
        Master seed; every match derives an independent sub-seed.
    """

    def __init__(
        self,
        strategies: Sequence[Strategy],
        game: Optional[NormalFormGame] = None,
        rounds: int = 200,
        repetitions: int = 1,
        noise: float = 0.0,
        include_self_play: bool = True,
        seed: int = 0,
    ):
        names = [s.name for s in strategies]
        if len(set(names)) != len(names):
            raise ValueError(f"strategy names must be unique, got {names!r}")
        if len(strategies) < 2:
            raise ValueError("a tournament needs at least two strategies")
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self.strategies = list(strategies)
        self.game = game if game is not None else prisoners_dilemma()
        self.rounds = rounds
        self.repetitions = repetitions
        self.noise = noise
        self.include_self_play = include_self_play
        self._rng_factory = RngFactory(seed)

    def _pairings(self) -> List[Tuple[int, int]]:
        indices = range(len(self.strategies))
        pairs = list(itertools.combinations(indices, 2))
        if self.include_self_play:
            pairs.extend((i, i) for i in indices)
        return pairs

    def play(self) -> TournamentResult:
        """Run the full tournament and return aggregated results."""
        names = [s.name for s in self.strategies]
        totals: Dict[str, float] = {name: 0.0 for name in names}
        rounds_played: Dict[str, int] = {name: 0 for name in names}
        matches: List[MatchResult] = []

        for i, j in self._pairings():
            for rep in range(self.repetitions):
                seed = self._rng_factory.seed_for(f"match/{i}/{j}/{rep}")
                match = IteratedMatch(
                    self.strategies[i],
                    self.strategies[j],
                    game=self.game,
                    rounds=self.rounds,
                    noise=self.noise,
                    seed=seed,
                )
                result = match.play()
                matches.append(result)
                totals[names[i]] += result.scores[0]
                rounds_played[names[i]] += result.rounds
                if i != j:
                    totals[names[j]] += result.scores[1]
                    rounds_played[names[j]] += result.rounds
                else:
                    # Self-play: both seats belong to the same strategy; count
                    # the second seat as well so averages stay comparable.
                    totals[names[i]] += result.scores[1]
                    rounds_played[names[i]] += result.rounds

        return TournamentResult(
            strategy_names=names,
            total_scores=totals,
            rounds_played=rounds_played,
            match_results=matches,
        )
