"""Iterated-game strategies.

Section 2.1 of the paper models BitTorrent peers as players of repeated
two-action games following Tit-for-Tat-like strategies, and Section 4.2's
candidate-list actualizations (TFT / TF2T) are lifted directly from the
repeated-games literature (Axelrod).  This module provides a small library of
memory-bounded strategies with a uniform interface, used by the iterated
match engine and the Axelrod-style tournament.

A strategy decides its next action from the match history so far.  History is
provided as two equal-length sequences: the actions the strategy itself played
and the actions its opponent played, most recent last.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Type

from repro.gametheory.games import Action

__all__ = [
    "Strategy",
    "AlwaysCooperate",
    "AlwaysDefect",
    "TitForTat",
    "TitForTwoTats",
    "SuspiciousTitForTat",
    "GenerousTitForTat",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "Alternator",
    "strategy_registry",
]

C, D = Action.COOPERATE, Action.DEFECT


class Strategy(ABC):
    """Base class for iterated-game strategies.

    Subclasses implement :meth:`decide`.  Strategies are stateless between
    matches: any per-match state must be derived from the provided history,
    which keeps matches trivially replayable and the tournament engine free
    to reuse strategy instances.
    """

    #: Short name used in tournament tables; defaults to the class name.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    @abstractmethod
    def decide(
        self,
        own_history: Sequence[Action],
        opponent_history: Sequence[Action],
        rng: Optional[random.Random] = None,
    ) -> Action:
        """Return the next action given the match history."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class AlwaysCooperate(Strategy):
    """Cooperate unconditionally."""

    name = "AllC"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        return C


class AlwaysDefect(Strategy):
    """Defect unconditionally (the strategy of Locher et al.'s BitThief-style client)."""

    name = "AllD"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        return D


class TitForTat(Strategy):
    """Cooperate first, then mirror the opponent's previous move.

    This is the strategy the paper identifies with BitTorrent's regular
    unchoke behaviour.
    """

    name = "TFT"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        if not opponent_history:
            return C
        return opponent_history[-1]


class TitForTwoTats(Strategy):
    """Defect only after two consecutive opponent defections (Axelrod's TF2T).

    This is the C2 candidate-list actualization of Section 4.2: a partner is
    forgiven a single lapse.
    """

    name = "TF2T"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        if len(opponent_history) < 2:
            return C
        if opponent_history[-1] == D and opponent_history[-2] == D:
            return D
        return C


class SuspiciousTitForTat(Strategy):
    """Like TFT but opens with defection."""

    name = "STFT"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        if not opponent_history:
            return D
        return opponent_history[-1]


class GenerousTitForTat(Strategy):
    """TFT that forgives a defection with probability ``generosity``."""

    name = "GTFT"

    def __init__(self, generosity: float = 0.1):
        super().__init__()
        if not 0.0 <= generosity <= 1.0:
            raise ValueError("generosity must be in [0, 1]")
        self.generosity = generosity

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        if not opponent_history:
            return C
        if opponent_history[-1] == C:
            return C
        rng = rng or random
        return C if rng.random() < self.generosity else D


class GrimTrigger(Strategy):
    """Cooperate until the opponent defects once, then defect forever."""

    name = "Grim"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        return D if D in opponent_history else C


class Pavlov(Strategy):
    """Win-Stay / Lose-Shift (the aspiration-based strategy of Posch [25]).

    Repeats its previous action after a "win" (opponent cooperated), switches
    after a "loss" (opponent defected).  This is the inspiration behind the
    Sort Adaptive ranking function (I4).
    """

    name = "Pavlov"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        if not own_history:
            return C
        last_own, last_opp = own_history[-1], opponent_history[-1]
        if last_opp == C:
            return last_own
        return C if last_own == D else D


class RandomStrategy(Strategy):
    """Cooperate with a fixed probability each round."""

    name = "Random"

    def __init__(self, cooperation_probability: float = 0.5):
        super().__init__()
        if not 0.0 <= cooperation_probability <= 1.0:
            raise ValueError("cooperation_probability must be in [0, 1]")
        self.cooperation_probability = cooperation_probability

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        rng = rng or random
        return C if rng.random() < self.cooperation_probability else D


class Alternator(Strategy):
    """Alternate cooperate / defect starting with cooperation."""

    name = "Alternator"

    def decide(self, own_history, opponent_history, rng=None) -> Action:
        return C if len(own_history) % 2 == 0 else D


def strategy_registry() -> Dict[str, Type[Strategy]]:
    """Mapping of strategy short names to strategy classes.

    Useful for building tournaments from configuration strings.
    """
    classes: List[Type[Strategy]] = [
        AlwaysCooperate,
        AlwaysDefect,
        TitForTat,
        TitForTwoTats,
        SuspiciousTitForTat,
        GenerousTitForTat,
        GrimTrigger,
        Pavlov,
        RandomStrategy,
        Alternator,
    ]
    return {cls.name: cls for cls in classes}
