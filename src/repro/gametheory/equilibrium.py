"""Equilibrium and dominance analysis for two-player normal-form games.

The paper's Section 2 argument revolves around dominance ("the dominant
strategy for fast peers is to always defect on the slow peers") and Nash
equilibrium claims.  This module provides the corresponding primitives for
:class:`~repro.gametheory.games.NormalFormGame`:

* best responses of each player to each opposing action,
* strictly / weakly dominant strategies,
* enumeration of pure-strategy Nash equilibria,
* a Nash-equilibrium check for a given action profile,
* iterated elimination of strictly dominated strategies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gametheory.games import NormalFormGame

__all__ = [
    "best_responses",
    "dominant_strategy",
    "pure_nash_equilibria",
    "is_nash_equilibrium",
    "iterated_elimination_of_dominated_strategies",
]

_EPS = 1e-12


def best_responses(game: NormalFormGame, player: str, opponent_action: str) -> List[str]:
    """Best responses of ``player`` ("row" or "column") to ``opponent_action``.

    Returns every action achieving the maximal payoff (ties included).
    """
    if player not in ("row", "column"):
        raise ValueError("player must be 'row' or 'column'")
    if player == "row":
        j = game.col_index(opponent_action)
        payoffs = game.row_matrix()[:, j]
        actions = game.row_actions
    else:
        i = game.row_index(opponent_action)
        payoffs = game.col_matrix()[i, :]
        actions = game.col_actions
    best = payoffs.max()
    return [a for a, p in zip(actions, payoffs) if p >= best - _EPS]


def dominant_strategy(
    game: NormalFormGame, player: str, strict: bool = False
) -> Optional[str]:
    """Return the dominant strategy of ``player`` if one exists, else ``None``.

    With ``strict=False`` (the default) a *weakly* dominant strategy is
    accepted: it must be at least as good as every alternative against every
    opposing action and strictly better against at least one.  This matches
    the paper's usage — e.g. in the BitTorrent Dilemma the fast peer's
    "defect" is only weakly dominant because the payoffs tie when the slow
    peer defects.
    """
    if player not in ("row", "column"):
        raise ValueError("player must be 'row' or 'column'")
    if player == "row":
        matrix = game.row_matrix()          # own action x opponent action
        actions = game.row_actions
    else:
        matrix = game.col_matrix().T        # own action x opponent action
        actions = game.col_actions

    n_actions = matrix.shape[0]
    for candidate in range(n_actions):
        dominates_all = True
        for other in range(n_actions):
            if other == candidate:
                continue
            diff = matrix[candidate] - matrix[other]
            if strict:
                if not np.all(diff > _EPS):
                    dominates_all = False
                    break
            else:
                if not (np.all(diff >= -_EPS) and np.any(diff > _EPS)):
                    dominates_all = False
                    break
        if dominates_all and n_actions > 1:
            return actions[candidate]
    return None


def pure_nash_equilibria(game: NormalFormGame) -> List[Tuple[str, str]]:
    """Enumerate all pure-strategy Nash equilibria of ``game``.

    Returns action profiles ``(row_action, col_action)`` in which each action
    is a best response to the other.
    """
    equilibria: List[Tuple[str, str]] = []
    row_m, col_m = game.row_matrix(), game.col_matrix()
    for i, row_action in enumerate(game.row_actions):
        for j, col_action in enumerate(game.col_actions):
            row_best = row_m[:, j].max()
            col_best = col_m[i, :].max()
            if row_m[i, j] >= row_best - _EPS and col_m[i, j] >= col_best - _EPS:
                equilibria.append((row_action, col_action))
    return equilibria


def is_nash_equilibrium(game: NormalFormGame, row_action: str, col_action: str) -> bool:
    """Whether the profile ``(row_action, col_action)`` is a pure Nash equilibrium."""
    return (row_action, col_action) in pure_nash_equilibria(game)


def iterated_elimination_of_dominated_strategies(
    game: NormalFormGame,
) -> Dict[str, List[str]]:
    """Iteratively eliminate strictly dominated strategies.

    Returns the surviving action sets ``{"row": [...], "column": [...]}``.
    Only strict dominance is used (weak elimination is order-dependent and
    therefore avoided).
    """
    row_alive = list(range(len(game.row_actions)))
    col_alive = list(range(len(game.col_actions)))
    row_m, col_m = game.row_matrix(), game.col_matrix()

    changed = True
    while changed:
        changed = False

        # Row player: eliminate rows strictly dominated on surviving columns.
        if len(row_alive) > 1:
            for candidate in list(row_alive):
                for other in row_alive:
                    if other == candidate:
                        continue
                    diff = row_m[other, col_alive] - row_m[candidate, col_alive]
                    if np.all(diff > _EPS):
                        row_alive.remove(candidate)
                        changed = True
                        break
                if changed:
                    break
        if changed:
            continue

        # Column player: eliminate columns strictly dominated on surviving rows.
        if len(col_alive) > 1:
            for candidate in list(col_alive):
                for other in col_alive:
                    if other == candidate:
                        continue
                    diff = col_m[row_alive, other] - col_m[row_alive, candidate]
                    if np.all(diff > _EPS):
                        col_alive.remove(candidate)
                        changed = True
                        break
                if changed:
                    break

    return {
        "row": [game.row_actions[i] for i in row_alive],
        "column": [game.col_actions[j] for j in col_alive],
    }
