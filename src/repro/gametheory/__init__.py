"""Game-theory substrate for the reproduction.

This sub-package implements everything Section 2 of the paper relies on:

* two-player normal-form games with dominance, best-response and pure Nash
  equilibrium analysis (:mod:`repro.gametheory.games`,
  :mod:`repro.gametheory.equilibrium`),
* the canonical games used in the paper — Prisoner's Dilemma, Dictator game,
  the *BitTorrent Dilemma* of Figure 1(a) and the modified *Birds* payoffs of
  Figure 1(c) (:mod:`repro.gametheory.games`),
* iterated-game strategies (TFT, TF2T, AllC, AllD, Grim, Pavlov, ...) and a
  match/tournament engine in the style of Axelrod
  (:mod:`repro.gametheory.strategies`, :mod:`repro.gametheory.iterated`,
  :mod:`repro.gametheory.tournament`),
* bandwidth-class populations and the analytical expected-game-win model of
  Section 2.2 together with the Appendix Nash-equilibrium deviation analysis
  (:mod:`repro.gametheory.classes`, :mod:`repro.gametheory.analytic`).
"""

from repro.gametheory.games import (
    Action,
    NormalFormGame,
    birds_game,
    bittorrent_dilemma,
    dictator_game,
    one_sided_prisoners_dilemma,
    prisoners_dilemma,
)
from repro.gametheory.equilibrium import (
    best_responses,
    dominant_strategy,
    is_nash_equilibrium,
    iterated_elimination_of_dominated_strategies,
    pure_nash_equilibria,
)
from repro.gametheory.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GenerousTitForTat,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    Strategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    strategy_registry,
)
from repro.gametheory.iterated import IteratedMatch, MatchResult
from repro.gametheory.tournament import AxelrodTournament, TournamentResult
from repro.gametheory.classes import BandwidthClass, ClassPopulation, piatek_classes
from repro.gametheory.analytic import (
    BirdsExpectedWins,
    BitTorrentExpectedWins,
    DeviationAnalysis,
    SwarmModel,
    birds_is_nash_equilibrium,
    bittorrent_is_nash_equilibrium,
)

__all__ = [
    "Action",
    "NormalFormGame",
    "prisoners_dilemma",
    "dictator_game",
    "one_sided_prisoners_dilemma",
    "bittorrent_dilemma",
    "birds_game",
    "best_responses",
    "dominant_strategy",
    "pure_nash_equilibria",
    "is_nash_equilibrium",
    "iterated_elimination_of_dominated_strategies",
    "Strategy",
    "TitForTat",
    "TitForTwoTats",
    "AlwaysCooperate",
    "AlwaysDefect",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "SuspiciousTitForTat",
    "GenerousTitForTat",
    "strategy_registry",
    "IteratedMatch",
    "MatchResult",
    "AxelrodTournament",
    "TournamentResult",
    "BandwidthClass",
    "ClassPopulation",
    "piatek_classes",
    "SwarmModel",
    "BitTorrentExpectedWins",
    "BirdsExpectedWins",
    "DeviationAnalysis",
    "bittorrent_is_nash_equilibrium",
    "birds_is_nash_equilibrium",
]
