"""Bandwidth-class populations for the analytical BitTorrent model.

Section 2.2 of the paper analyses a swarm partitioned into bandwidth classes
(e.g. *fast* and *slow* peers, or finer partitions).  For a peer ``c`` in a
given class the model only cares about three aggregate counts — the number of
peers in classes *above* ``c``'s class (``NA``), *below* it (``NB``) and in
the *same* class (``NC``) — plus the number of regular unchoke slots ``Ur``.

This module provides :class:`BandwidthClass` and :class:`ClassPopulation`,
which hold a concrete class structure and compute those aggregates, and
:func:`piatek_classes`, a convenience population whose class speeds follow the
qualitative shape of the Piatek et al. bandwidth measurement used by the
paper's experiments (a large population of slow peers, fewer medium peers and
a small number of very fast peers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["BandwidthClass", "ClassPopulation", "piatek_classes"]


@dataclass(frozen=True)
class BandwidthClass:
    """A homogeneous group of peers sharing one upload capacity.

    Parameters
    ----------
    name:
        Label for the class (e.g. ``"slow"``).
    upload_speed:
        Upload capacity of every peer in the class (KBps, but any consistent
        unit works).
    count:
        Number of peers in the class.
    """

    name: str
    upload_speed: float
    count: int

    def __post_init__(self) -> None:
        if self.upload_speed <= 0:
            raise ValueError(f"upload_speed must be positive, got {self.upload_speed}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


class ClassPopulation:
    """An ordered collection of bandwidth classes.

    Classes are kept sorted by increasing upload speed; class indices used by
    the analytical model refer to this sorted order (index 0 = slowest).
    """

    def __init__(self, classes: Iterable[BandwidthClass]):
        ordered = sorted(classes, key=lambda c: c.upload_speed)
        if not ordered:
            raise ValueError("a population needs at least one class")
        speeds = [c.upload_speed for c in ordered]
        if len(set(speeds)) != len(speeds):
            raise ValueError("class upload speeds must be distinct")
        names = [c.name for c in ordered]
        if len(set(names)) != len(names):
            raise ValueError("class names must be distinct")
        self._classes: Tuple[BandwidthClass, ...] = tuple(ordered)

    # ------------------------------------------------------------------ #
    # container interface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)

    def __getitem__(self, index: int) -> BandwidthClass:
        return self._classes[index]

    @property
    def classes(self) -> Tuple[BandwidthClass, ...]:
        return self._classes

    @property
    def total_peers(self) -> int:
        """Total number of peers across all classes."""
        return sum(c.count for c in self._classes)

    def index_of(self, name: str) -> int:
        """Return the index of the class named ``name``."""
        for i, cls in enumerate(self._classes):
            if cls.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # aggregates used by the analytical model (Table 1 of the paper)
    # ------------------------------------------------------------------ #
    def peers_above(self, class_index: int) -> int:
        """``NA``: number of peers in classes with higher upload speed."""
        self._check_index(class_index)
        return sum(c.count for c in self._classes[class_index + 1:])

    def peers_below(self, class_index: int) -> int:
        """``NB``: number of peers in classes with lower upload speed."""
        self._check_index(class_index)
        return sum(c.count for c in self._classes[:class_index])

    def peers_same(self, class_index: int) -> int:
        """``NC``: number of peers in the class itself (including peer ``c``)."""
        self._check_index(class_index)
        return self._classes[class_index].count

    def aggregates(self, class_index: int) -> Tuple[int, int, int]:
        """Return ``(NA, NB, NC)`` for the class at ``class_index``."""
        return (
            self.peers_above(class_index),
            self.peers_below(class_index),
            self.peers_same(class_index),
        )

    def speeds(self) -> List[float]:
        """Upload speeds in increasing order."""
        return [c.upload_speed for c in self._classes]

    def expand(self) -> List[float]:
        """Per-peer upload speeds for the whole population (class order)."""
        speeds: List[float] = []
        for cls in self._classes:
            speeds.extend([cls.upload_speed] * cls.count)
        return speeds

    def _check_index(self, class_index: int) -> None:
        if not 0 <= class_index < len(self._classes):
            raise IndexError(
                f"class index {class_index} out of range for {len(self._classes)} classes"
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        inner = ", ".join(
            f"{c.name}({c.count}x{c.upload_speed:g})" for c in self._classes
        )
        return f"ClassPopulation[{inner}]"


def piatek_classes(total_peers: int = 50) -> ClassPopulation:
    """A three-class population shaped like the Piatek et al. measurement.

    The real measurement (NSDI'07) is a long-tailed distribution of upload
    capacities dominated by slow residential links.  For the analytical model
    only a discrete class structure is needed; this helper splits
    ``total_peers`` into roughly 60% slow (30 KBps), 30% medium (100 KBps)
    and 10% fast (500 KBps) peers, which preserves the fast/slow asymmetry
    the Section 2 analysis depends on.
    """
    if total_peers < 10:
        raise ValueError("total_peers must be at least 10 to populate three classes")
    slow = max(1, round(total_peers * 0.6))
    medium = max(1, round(total_peers * 0.3))
    fast = max(1, total_peers - slow - medium)
    return ClassPopulation(
        [
            BandwidthClass("slow", 30.0, slow),
            BandwidthClass("medium", 100.0, medium),
            BandwidthClass("fast", 500.0, fast),
        ]
    )
