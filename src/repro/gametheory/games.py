"""Two-player normal-form games and the canonical games of the paper.

The central object is :class:`NormalFormGame`, a plain bimatrix game with
named actions per player.  On top of it this module provides constructors for
the games referenced in Section 2 of the paper:

* the classic **Prisoner's Dilemma**,
* the **Dictator game** (one player has no strategic input),
* the **One-Sided Prisoner's Dilemma**,
* the **BitTorrent Dilemma** of Figure 1(a) — the game between a *fast* and
  a *slow* peer once repeated interaction ("shadow of the future") and
  opportunity costs are taken into account, and
* the modified **Birds** payoffs of Figure 1(c), in which the slow peer's
  payoffs also account for the opportunity cost of cooperating with a fast
  peer, making mutual defection (across classes) the dominant outcome.

Payoff-matrix reconstruction
----------------------------
The figure in the paper lays the two payoff matrices out graphically; the
entries used here are reconstructed from the accompanying prose (with
``f`` the upload speed of a fast peer, ``s`` of a slow one, ``f > s > 0``):

Figure 1(a), rows = fast peer, columns = slow peer, cells = (fast, slow)::

                 slow cooperates     slow defects
    fast C        (s - f,  f)          (0,  s)
    fast D        (s,      0)          (0,  0)

* A fast peer that cooperates with a slow peer nets ``s - f`` (it receives
  ``s`` but forgoes ``f`` from another fast peer — its opportunity cost).
* A fast peer that defects while the slow peer cooperates receives ``s``
  for free.
* A slow peer that cooperates with a cooperating fast peer sustains the
  relationship and receives ``f``.
* A slow peer that defects on a cooperating fast peer grabs a one-off ``f``
  and then falls back to a slow partnership; the paper values this at
  ``f + (s - f) = s``.

Hence, under (a), *defect* is dominant for the fast peer and *cooperate* is
dominant for the slow peer — the "BitTorrent Dilemma", which is structurally
a Dictator-like / one-sided dilemma rather than a Prisoner's Dilemma.

Figure 1(c) (Birds) re-evaluates the slow peer's opportunity costs: there is
no opportunity cost in defecting against a fast peer, but cooperating with
one costs a missed slow partnership (worth ``s``)::

                 slow cooperates     slow defects
    fast C        (s - f,  f - s)      (0,  f)
    fast D        (s,      0)          (0,  0)

Under (c) *defect* is dominant for both classes, i.e. peers prefer partners
from their own bandwidth class ("birds of a feather stick together").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Action",
    "NormalFormGame",
    "prisoners_dilemma",
    "dictator_game",
    "one_sided_prisoners_dilemma",
    "bittorrent_dilemma",
    "birds_game",
]


class Action(str, Enum):
    """The two actions of the cooperation games used throughout the paper."""

    COOPERATE = "C"
    DEFECT = "D"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class NormalFormGame:
    """A two-player normal-form (bimatrix) game.

    Parameters
    ----------
    name:
        Human-readable name of the game.
    row_actions, col_actions:
        Ordered action labels for the row and column player.
    row_payoffs, col_payoffs:
        Payoff matrices of shape ``(len(row_actions), len(col_actions))``.
    row_label, col_label:
        Optional descriptive labels for the players (e.g. ``"fast"`` and
        ``"slow"`` in the BitTorrent Dilemma).
    """

    name: str
    row_actions: Tuple[str, ...]
    col_actions: Tuple[str, ...]
    row_payoffs: Tuple[Tuple[float, ...], ...]
    col_payoffs: Tuple[Tuple[float, ...], ...]
    row_label: str = "row"
    col_label: str = "column"

    def __post_init__(self) -> None:
        rows, cols = len(self.row_actions), len(self.col_actions)
        if rows == 0 or cols == 0:
            raise ValueError("games need at least one action per player")
        for matrix_name, matrix in (("row_payoffs", self.row_payoffs),
                                    ("col_payoffs", self.col_payoffs)):
            if len(matrix) != rows or any(len(r) != cols for r in matrix):
                raise ValueError(
                    f"{matrix_name} must have shape ({rows}, {cols})"
                )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        name: str,
        row_actions: Sequence[str],
        col_actions: Sequence[str],
        row_payoffs: Sequence[Sequence[float]],
        col_payoffs: Sequence[Sequence[float]],
        row_label: str = "row",
        col_label: str = "column",
    ) -> "NormalFormGame":
        """Build a game from nested sequences (converted to tuples)."""
        return cls(
            name=name,
            row_actions=tuple(str(a) for a in row_actions),
            col_actions=tuple(str(a) for a in col_actions),
            row_payoffs=tuple(tuple(float(x) for x in row) for row in row_payoffs),
            col_payoffs=tuple(tuple(float(x) for x in row) for row in col_payoffs),
            row_label=row_label,
            col_label=col_label,
        )

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(number of row actions, number of column actions)``."""
        return len(self.row_actions), len(self.col_actions)

    def row_index(self, action: str) -> int:
        """Index of ``action`` among the row player's actions."""
        return self.row_actions.index(str(action))

    def col_index(self, action: str) -> int:
        """Index of ``action`` among the column player's actions."""
        return self.col_actions.index(str(action))

    def payoffs(self, row_action: str, col_action: str) -> Tuple[float, float]:
        """Return ``(row payoff, column payoff)`` for an action profile."""
        i, j = self.row_index(row_action), self.col_index(col_action)
        return self.row_payoffs[i][j], self.col_payoffs[i][j]

    def row_matrix(self) -> np.ndarray:
        """Row player's payoff matrix as a numpy array."""
        return np.asarray(self.row_payoffs, dtype=float)

    def col_matrix(self) -> np.ndarray:
        """Column player's payoff matrix as a numpy array."""
        return np.asarray(self.col_payoffs, dtype=float)

    def is_symmetric(self) -> bool:
        """Whether the game is symmetric (same actions, transposed payoffs)."""
        if self.row_actions != self.col_actions:
            return False
        return bool(np.allclose(self.row_matrix(), self.col_matrix().T))

    def transpose(self) -> "NormalFormGame":
        """Return the game with the player roles swapped."""
        return NormalFormGame.from_arrays(
            name=f"{self.name} (transposed)",
            row_actions=self.col_actions,
            col_actions=self.row_actions,
            row_payoffs=self.col_matrix().T,
            col_payoffs=self.row_matrix().T,
            row_label=self.col_label,
            col_label=self.row_label,
        )

    def describe(self) -> str:
        """A printable description of the payoff matrix."""
        lines: List[str] = [f"{self.name} ({self.row_label} x {self.col_label})"]
        header = " " * 12 + "  ".join(f"{a:>14}" for a in self.col_actions)
        lines.append(header)
        for i, row_action in enumerate(self.row_actions):
            cells = []
            for j in range(len(self.col_actions)):
                cells.append(
                    f"({self.row_payoffs[i][j]:+.2f},{self.col_payoffs[i][j]:+.2f})"
                )
            lines.append(f"{row_action:>10}  " + "  ".join(f"{c:>14}" for c in cells))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation of the game."""
        return {
            "name": self.name,
            "row_label": self.row_label,
            "col_label": self.col_label,
            "row_actions": list(self.row_actions),
            "col_actions": list(self.col_actions),
            "row_payoffs": [list(r) for r in self.row_payoffs],
            "col_payoffs": [list(r) for r in self.col_payoffs],
        }


# ---------------------------------------------------------------------- #
# canonical games
# ---------------------------------------------------------------------- #
_CD = (Action.COOPERATE.value, Action.DEFECT.value)


def prisoners_dilemma(
    reward: float = 3.0,
    temptation: float = 5.0,
    sucker: float = 0.0,
    punishment: float = 1.0,
) -> NormalFormGame:
    """The classic Prisoner's Dilemma.

    Requires ``temptation > reward > punishment > sucker`` for the dilemma to
    hold; the default values (5, 3, 1, 0) are Axelrod's.
    """
    if not temptation > reward > punishment > sucker:
        raise ValueError(
            "Prisoner's Dilemma requires temptation > reward > punishment > sucker"
        )
    row = [[reward, sucker], [temptation, punishment]]
    col = [[reward, temptation], [sucker, punishment]]
    return NormalFormGame.from_arrays(
        "Prisoner's Dilemma", _CD, _CD, row, col, "player 1", "player 2"
    )


def dictator_game(endowment: float = 10.0, transfer: float = 5.0) -> NormalFormGame:
    """A Dictator game in bimatrix form.

    The row player (the dictator) chooses whether to share ``transfer`` of an
    ``endowment``; the column player has a single passive action and no
    strategic input — the structural property the paper compares the
    fast/slow BitTorrent interaction to.
    """
    if not 0 <= transfer <= endowment:
        raise ValueError("transfer must lie in [0, endowment]")
    row = [[endowment - transfer], [endowment]]
    col = [[transfer], [0.0]]
    return NormalFormGame.from_arrays(
        "Dictator game",
        ("share", "keep"),
        ("accept",),
        row,
        col,
        "dictator",
        "recipient",
    )


def one_sided_prisoners_dilemma(
    benefit: float = 4.0, cost: float = 1.0
) -> NormalFormGame:
    """A One-Sided Prisoner's Dilemma.

    Only the row player faces a defection temptation; the column player's
    cooperation is weakly dominant.  ``benefit`` must exceed ``cost``.
    """
    if not benefit > cost > 0:
        raise ValueError("requires benefit > cost > 0")
    row = [[benefit - cost, 0.0], [benefit, 0.0]]
    col = [[benefit - cost, benefit], [0.0, 0.0]]
    return NormalFormGame.from_arrays(
        "One-Sided Prisoner's Dilemma", _CD, _CD, row, col, "tempted", "committed"
    )


def _check_speeds(fast_speed: float, slow_speed: float) -> None:
    if not fast_speed > slow_speed > 0:
        raise ValueError(
            "the BitTorrent Dilemma requires fast_speed > slow_speed > 0, "
            f"got fast={fast_speed!r}, slow={slow_speed!r}"
        )


def bittorrent_dilemma(fast_speed: float = 100.0, slow_speed: float = 25.0) -> NormalFormGame:
    """The BitTorrent Dilemma of Figure 1(a).

    Row player is the *fast* peer (upload speed ``fast_speed``), column player
    the *slow* peer (``slow_speed``).  Under these payoffs defection is the
    dominant strategy of the fast peer while cooperation is the dominant
    strategy of the slow peer, which is what makes the game Dictator-like
    rather than a Prisoner's Dilemma.
    """
    _check_speeds(fast_speed, slow_speed)
    f, s = float(fast_speed), float(slow_speed)
    row = [[s - f, 0.0], [s, 0.0]]            # fast peer payoffs
    col = [[f, s], [0.0, 0.0]]                # slow peer payoffs
    return NormalFormGame.from_arrays(
        "BitTorrent Dilemma", _CD, _CD, row, col, "fast", "slow"
    )


def birds_game(fast_speed: float = 100.0, slow_speed: float = 25.0) -> NormalFormGame:
    """The modified payoffs of Figure 1(c) underlying the Birds protocol.

    Compared to :func:`bittorrent_dilemma`, the slow peer's payoffs now charge
    the opportunity cost of cooperating with a fast peer (a missed sustained
    relationship with another slow peer, worth ``slow_speed``), so defection
    becomes dominant for both classes.
    """
    _check_speeds(fast_speed, slow_speed)
    f, s = float(fast_speed), float(slow_speed)
    row = [[s - f, 0.0], [s, 0.0]]            # fast peer payoffs (unchanged)
    col = [[f - s, f], [0.0, 0.0]]            # slow peer payoffs with opportunity cost
    return NormalFormGame.from_arrays(
        "Birds payoffs", _CD, _CD, row, col, "fast", "slow"
    )
