"""Iterated two-player matches.

An :class:`IteratedMatch` plays two :class:`~repro.gametheory.strategies.Strategy`
instances against each other for a number of rounds on a symmetric two-action
game (by default the Prisoner's Dilemma), optionally with action noise —
the "trembling hand" that makes strategies like TF2T interesting.  The match
records the full action history and cumulative payoffs; this is the engine
behind the Axelrod-style tournament in :mod:`repro.gametheory.tournament` and
is used in the paper's discussion of BitTorrent as a strategy in a repeated
game.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.gametheory.games import Action, NormalFormGame, prisoners_dilemma
from repro.gametheory.strategies import Strategy

__all__ = ["MatchResult", "IteratedMatch"]


@dataclass
class MatchResult:
    """Outcome of an iterated match between two strategies."""

    strategy_names: Tuple[str, str]
    rounds: int
    actions: List[Tuple[Action, Action]] = field(default_factory=list)
    scores: Tuple[float, float] = (0.0, 0.0)

    @property
    def average_scores(self) -> Tuple[float, float]:
        """Per-round average payoff of each player."""
        if self.rounds == 0:
            return (0.0, 0.0)
        return (self.scores[0] / self.rounds, self.scores[1] / self.rounds)

    def cooperation_rates(self) -> Tuple[float, float]:
        """Fraction of rounds in which each player cooperated."""
        if not self.actions:
            return (0.0, 0.0)
        coop1 = sum(1 for a, _ in self.actions if a == Action.COOPERATE)
        coop2 = sum(1 for _, b in self.actions if b == Action.COOPERATE)
        return (coop1 / len(self.actions), coop2 / len(self.actions))

    def winner(self) -> Optional[str]:
        """Name of the strategy with the higher score, or ``None`` on a tie."""
        if self.scores[0] > self.scores[1]:
            return self.strategy_names[0]
        if self.scores[1] > self.scores[0]:
            return self.strategy_names[1]
        return None


class IteratedMatch:
    """Play two strategies against each other for a fixed number of rounds.

    Parameters
    ----------
    strategy_one, strategy_two:
        The competing strategies.
    game:
        A symmetric two-action game whose actions are ``"C"`` and ``"D"``.
        Defaults to the standard Prisoner's Dilemma.
    rounds:
        Number of rounds to play (the paper's "shadow of the future" is large,
        i.e. many rounds).
    noise:
        Probability that an intended action is flipped, independently per
        player per round.
    seed:
        Seed for the match's private random generator (used by stochastic
        strategies and by noise).
    """

    def __init__(
        self,
        strategy_one: Strategy,
        strategy_two: Strategy,
        game: Optional[NormalFormGame] = None,
        rounds: int = 200,
        noise: float = 0.0,
        seed: Optional[int] = None,
    ):
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.game = game if game is not None else prisoners_dilemma()
        expected_actions = (Action.COOPERATE.value, Action.DEFECT.value)
        if (
            tuple(self.game.row_actions) != expected_actions
            or tuple(self.game.col_actions) != expected_actions
        ):
            raise ValueError(
                "IteratedMatch requires a game with actions ('C', 'D') for both players"
            )
        self.strategy_one = strategy_one
        self.strategy_two = strategy_two
        self.rounds = rounds
        self.noise = noise
        self._rng = random.Random(seed)

    def _maybe_flip(self, action: Action) -> Action:
        if self.noise > 0.0 and self._rng.random() < self.noise:
            return Action.DEFECT if action == Action.COOPERATE else Action.COOPERATE
        return action

    def play(self) -> MatchResult:
        """Run the match and return its :class:`MatchResult`."""
        history_one: List[Action] = []
        history_two: List[Action] = []
        actions: List[Tuple[Action, Action]] = []
        score_one = 0.0
        score_two = 0.0

        for _ in range(self.rounds):
            move_one = self._maybe_flip(
                self.strategy_one.decide(history_one, history_two, self._rng)
            )
            move_two = self._maybe_flip(
                self.strategy_two.decide(history_two, history_one, self._rng)
            )
            payoff_one, payoff_two = self.game.payoffs(move_one.value, move_two.value)
            score_one += payoff_one
            score_two += payoff_two
            history_one.append(move_one)
            history_two.append(move_two)
            actions.append((move_one, move_two))

        return MatchResult(
            strategy_names=(self.strategy_one.name, self.strategy_two.name),
            rounds=self.rounds,
            actions=actions,
            scores=(score_one, score_two),
        )
