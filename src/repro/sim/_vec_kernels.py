"""Hot-path kernels for the vectorised batch engine.

The vec engine's round loop reduces to a handful of *grouped* primitives
over flat edge lists: "for every peer, pick the top-``k`` of its candidate
edges under a lexicographic key".  PR 6 implemented those with one global
``np.lexsort`` over ``(tie, secondary, primary, group)`` — four stable
sort passes over every edge, every round.  The kernels here replace that
with **partial selection**: segments (one per peer) are bucketed by width
class into padded matrices, ``np.argpartition`` extracts each row's
top-``k`` slice by the primary key alone, only that ``k``-wide slice is
fully sorted, and the (usually tiny) set of edges tied *exactly at the
selection boundary* is resolved by the remaining keys with a sort over
just those edges.  Work drops from ``O(E log E)`` per key to
``O(E + S·k log k + T log T)`` where ``T`` is the boundary-tie count —
and segments no wider than ``k`` never touch a sort at all.

Exactness
---------
:func:`grouped_topk` selects, per segment, exactly the edge *set* a full
``np.lexsort((tie, secondary, primary, group))`` cutoff would select —
property-tested against that oracle across adversarial tie patterns in
``tests/sim/test_vec_kernels.py``.  Floats are compared through an
order-preserving bijection into ``uint64``
(:func:`pack_float64_for_order`), so no precision is lost.  When two
edges of one segment tie on the *entire* ``(primary, secondary, tie)``
triple the top-``k`` set itself is ambiguous and either valid set may be
returned; the engine feeds ``tie`` from a continuous RNG draw, which
makes full-triple ties a measure-zero event.

The module also carries the engine's round-scoped
:class:`ScratchBuffers` (preallocated, geometrically grown arrays that
kill per-round allocation churn) and the merge/compaction helpers for
the pair-key-sorted ("CSR-style": grouped by receiver, senders sorted
within each group) interaction-history rounds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ScratchBuffers",
    "grouped_topk",
    "merge_sorted_histories",
    "pack_float64_for_order",
    "segment_bounds",
]

_EMPTY_I = np.empty(0, dtype=np.int64)

#: Sign-bit mask for the float64 -> uint64 order-preserving bijection.
_SIGN = np.uint64(0x8000000000000000)


def pack_float64_for_order(values: np.ndarray) -> np.ndarray:
    """Map float64 to uint64 preserving ``<`` exactly (NaN-free inputs).

    The usual IEEE-754 trick: non-negative floats get the sign bit set
    (shifting them above every negative), negative floats are bitwise
    complemented (reversing their order).  The result compares with
    integer ``<`` exactly as the inputs compare with float ``<``, which
    lets :func:`grouped_topk` partition on a single unsigned key.
    """
    values = np.asarray(values, dtype=np.float64)
    # ``-0.0 + 0.0 == +0.0``: collapse signed zeros so the bijection puts
    # them in one equivalence class, exactly as float ``<`` does.
    bits = np.ascontiguousarray(values + 0.0).view(np.uint64)
    return np.where(bits & _SIGN, ~bits, bits | _SIGN)


def segment_bounds(sorted_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(starts, widths)`` of the runs in an already-sorted id array.

    The vec engine keeps its edge lists sorted by packed pair key, which
    groups them by receiver; run boundaries are therefore a single
    vectorised comparison — no ``bincount`` over the (ever-growing) dense
    id space.
    """
    count = sorted_ids.size
    if count == 0:
        return _EMPTY_I, _EMPTY_I
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    starts = np.empty(boundaries.size + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = boundaries
    widths = np.empty(starts.size, dtype=np.int64)
    widths[:-1] = np.diff(starts)
    widths[-1] = count - starts[-1]
    return starts, widths


def _resolve_boundary_ties(
    rows: np.ndarray,
    need: np.ndarray,
    secondary: Optional[np.ndarray],
    tie: np.ndarray,
) -> np.ndarray:
    """Pick ``need[r]`` of each row's boundary-tied edges by (secondary, tie).

    ``rows`` labels the tied edges by row/segment (already restricted to
    rows where the ties outnumber the remaining quota); returns a boolean
    mask over them.  This is the only place the kernel still sorts by the
    full key — over the tied edges alone.
    """
    if secondary is None:
        order = np.lexsort((tie, rows))
    else:
        order = np.lexsort((tie, secondary, rows))
    sorted_rows = rows[order]
    count = sorted_rows.size
    new_run = np.empty(count, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=new_run[1:])
    run_id = np.cumsum(new_run) - 1
    run_start = np.flatnonzero(new_run)
    within = np.arange(count, dtype=np.int64) - run_start[run_id]
    keep = np.zeros(count, dtype=bool)
    keep[order] = within < need[sorted_rows]
    return keep


def grouped_topk(
    starts: np.ndarray,
    widths: np.ndarray,
    k: np.ndarray,
    primary: np.ndarray,
    tie: np.ndarray,
    secondary: Optional[np.ndarray] = None,
    scratch: Optional["ScratchBuffers"] = None,
) -> np.ndarray:
    """Indices of each segment's top-``k[s]`` edges by (primary, secondary, tie).

    Segments are contiguous slices ``[starts[s], starts[s] + widths[s])``
    of the flat edge arrays, ascending keys win, and the selected index
    set per segment equals the full-lexsort oracle's cutoff (see module
    docstring for the exactness contract).  ``secondary`` may be omitted
    when every segment's secondary key is constant (the common case: only
    the Sort-Loyal ranking uses it).  Returned indices are in no
    particular order — callers treat the selection as a set.
    """
    n_edges = primary.size
    if n_edges == 0 or starts.size == 0:
        return _EMPTY_I
    k = np.minimum(k, widths)
    packed = pack_float64_for_order(primary)
    if int(k.max()) <= 1:
        return _grouped_argmin(starts, widths, k, packed, secondary, tie)

    # Segments no wider than their quota: every edge selected, no sorting.
    saturated = widths <= k
    selected_parts = []
    if saturated.any():
        sat_starts = starts[saturated]
        sat_widths = widths[saturated]
        take = _expand_segments(sat_starts, sat_widths, scratch)
        selected_parts.append(take)
    open_rows = np.flatnonzero(~saturated & (k > 0))
    if open_rows.size == 0:
        return (
            selected_parts[0]
            if len(selected_parts) == 1
            else np.concatenate(selected_parts)
            if selected_parts
            else _EMPTY_I
        )

    # Bucket the remaining segments by power-of-two width class and run
    # the padded partial selection per class.  ``frexp`` exponents give
    # exact integer bit lengths (widths here are far below 2**53).
    open_widths = widths[open_rows]
    classes = np.frexp(open_widths - 1)[1]
    for cls in np.unique(classes):
        rows = open_rows[classes == cls]
        width_cap = 1 << int(cls)
        selected_parts.append(
            _class_topk(
                starts[rows], widths[rows], k[rows], width_cap,
                packed, secondary, tie, scratch,
            )
        )
    return np.concatenate(selected_parts)


def _grouped_argmin(
    starts: np.ndarray,
    widths: np.ndarray,
    k: np.ndarray,
    packed: np.ndarray,
    secondary: Optional[np.ndarray],
    tie: np.ndarray,
) -> np.ndarray:
    """Top-1 fast path: a segment argmin via ``reduceat``, no matrices.

    ``k == 1`` dominates the stranger-pool selection (narrow segments,
    single winner); the padded width-class machinery costs several times
    the reduction itself there, so this path handles every segment with
    one ``minimum.reduceat`` plus an O(E) equality probe.  Segments with
    ``k == 0`` select nothing; min-ties are resolved by (secondary, tie)
    over the tied edges alone, exactly as the general path does.
    """
    seg_min = np.minimum.reduceat(packed, starts)
    seg_of = np.zeros(packed.size, dtype=np.int64)
    seg_of[starts[1:]] = 1
    np.cumsum(seg_of, out=seg_of)
    hit = packed == seg_min[seg_of]
    if (k == 0).any():
        hit &= (k != 0)[seg_of]
    winners = np.flatnonzero(hit)
    rows = seg_of[winners]
    dup = np.bincount(rows, minlength=starts.size)[rows] > 1
    if not dup.any():
        return winners
    contested = winners[dup]
    keep = _resolve_boundary_ties(
        rows[dup],
        np.ones(starts.size, dtype=np.int64),
        secondary[contested] if secondary is not None else None,
        tie[contested],
    )
    return np.concatenate([winners[~dup], contested[keep]])


def _expand_segments(
    starts: np.ndarray, widths: np.ndarray, scratch: Optional["ScratchBuffers"]
) -> np.ndarray:
    """Concatenate ``arange(starts[s], starts[s] + widths[s])`` runs."""
    del scratch  # callers may hold the result across rounds; always fresh
    total = int(widths.sum())
    if total == 0:
        return _EMPTY_I
    out = np.empty(total, dtype=np.int64)
    # Vectorised multi-range arange: cumulative offsets minus per-run bases.
    out[:] = 1
    ends = np.cumsum(widths)
    out[0] = starts[0]
    if starts.size > 1:
        out[ends[:-1]] = starts[1:] - (starts[:-1] + widths[:-1]) + 1
    np.cumsum(out, out=out)
    return out


def _class_topk(
    starts: np.ndarray,
    widths: np.ndarray,
    k: np.ndarray,
    width_cap: int,
    packed: np.ndarray,
    secondary: Optional[np.ndarray],
    tie: np.ndarray,
    scratch: Optional["ScratchBuffers"],
) -> np.ndarray:
    """Partial top-k selection over one padded width class."""
    n_rows = starts.size
    cols = np.arange(width_cap, dtype=np.int64)
    gather = starts[:, None] + cols[None, :]
    valid = cols[None, :] < widths[:, None]
    np.minimum(gather, packed.size - 1, out=gather)
    matrix = packed[gather]
    matrix[~valid] = np.uint64(0xFFFFFFFFFFFFFFFF)

    kmax = int(k.max())
    row_idx = np.arange(n_rows)
    if width_cap > kmax:
        # argpartition pulls each row's kmax smallest to the front; only
        # that narrow slice is fully sorted to find per-row pivots.
        part = np.argpartition(matrix, kmax - 1, axis=1)[:, :kmax]
        slice_vals = np.take_along_axis(matrix, part, axis=1)
        order = np.argsort(slice_vals, axis=1)
        slice_sorted = np.take_along_axis(slice_vals, order, axis=1)
        pivot = slice_sorted[row_idx, k - 1]
    else:
        matrix_sorted = np.sort(matrix, axis=1)
        pivot = matrix_sorted[row_idx, k - 1]

    below = matrix < pivot[:, None]
    n_below = below.sum(axis=1)
    at_pivot = matrix == pivot[:, None]
    n_at = at_pivot.sum(axis=1)
    need = k - n_below

    # Edges strictly below the pivot are always in.
    sel_rows, sel_cols = np.nonzero(below)
    selected = [starts[sel_rows] + sel_cols]

    # Rows whose pivot ties fit exactly take all of them; the rest go to
    # the (secondary, tie) resolver.
    exact = n_at == need
    if exact.any():
        rows_e, cols_e = np.nonzero(at_pivot & exact[:, None])
        selected.append(starts[rows_e] + cols_e)
    contested = ~exact
    if contested.any():
        rows_c, cols_c = np.nonzero(at_pivot & contested[:, None])
        edge_idx = starts[rows_c] + cols_c
        keep = _resolve_boundary_ties(
            rows_c,
            need,
            secondary[edge_idx] if secondary is not None else None,
            tie[edge_idx],
        )
        selected.append(edge_idx[keep])
    return np.concatenate(selected)


def merge_sorted_histories(
    keys_a: np.ndarray,
    amounts_a: np.ndarray,
    keys_b: np.ndarray,
    amounts_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two key-sorted history rounds, summing duplicate pair keys.

    Both inputs are sorted by packed ``(receiver, sender)`` pair key with
    unique keys (one interaction per pair per round); the result is the
    candidate aggregation — sorted unique keys plus per-pair summed
    amounts — produced with one stable merge and a ``reduceat``, never a
    scatter back through an ``unique(return_inverse)`` indirection.
    """
    if keys_a.size == 0:
        return keys_b, amounts_b
    if keys_b.size == 0:
        return keys_a, amounts_a
    keys = np.concatenate([keys_a, keys_b])
    amounts = np.concatenate([amounts_a, amounts_b])
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    amounts = amounts[order]
    fresh = np.empty(keys.size, dtype=bool)
    fresh[0] = True
    np.not_equal(keys[1:], keys[:-1], out=fresh[1:])
    run_starts = np.flatnonzero(fresh)
    merged_keys = keys[run_starts]
    merged_amounts = np.add.reduceat(amounts, run_starts)
    return merged_keys, merged_amounts


class ScratchBuffers:
    """Round-scoped reusable arrays, grown geometrically and never freed.

    The vec engine allocates a dozen dense work arrays per round; at 100k
    peers that is tens of megabytes of allocator traffic per simulated
    round.  Each named buffer here is allocated once at the high-water
    size and handed out as a length-``size`` view, so steady-state rounds
    allocate nothing.  Callers own the buffer until they next request the
    same name — the engine's phases are strictly sequential, which makes
    that discipline trivial to honour.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def _get(self, name: str, size: int, dtype) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < size:
            capacity = max(16, size)
            if buffer is not None:
                capacity = max(capacity, 2 * buffer.size)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size]

    def int64(self, name: str, size: int) -> np.ndarray:
        return self._get(name, size, np.int64)

    def float64(self, name: str, size: int) -> np.ndarray:
        return self._get(name, size, np.float64)

    def zeros_float64(self, name: str, size: int) -> np.ndarray:
        view = self._get(name, size, np.float64)
        view[:] = 0.0
        return view

    def zeros_int64(self, name: str, size: int) -> np.ndarray:
        view = self._get(name, size, np.int64)
        view[:] = 0
        return view
