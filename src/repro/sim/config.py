"""Simulation configuration.

:class:`SimulationConfig` holds every tunable of the cycle-based simulator.
The defaults follow the paper's setup (Section 4.3): 50 peers — "a good
approximation of an average BitTorrent swarm-size" — interacting for 500
rounds, with upload capacities drawn from a Piatek-style bandwidth
distribution, and no churn unless requested.

Smaller presets (:meth:`SimulationConfig.small`, :meth:`SimulationConfig.smoke`)
are provided for tests and benchmarks; the per-experiment scaling actually
used is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.bandwidth import BandwidthDistribution, piatek_distribution
from repro.sim.dynamics import PopulationDynamics, ScenarioDynamics

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one cycle-based simulation run.

    Parameters
    ----------
    n_peers:
        Number of peers in the swarm.
    rounds:
        Number of simulated rounds.
    bandwidth:
        Upload-capacity distribution; ``None`` selects the Piatek-style
        default.
    churn_rate:
        Per-peer per-round probability of being replaced by a fresh peer
        (0 disables churn).  The §4.4 churn check uses 0.01 and 0.1.
    requests_per_round:
        Number of discovery/service requests each peer issues per round;
        incoming requests are the primary way strangers learn about each
        other.
    discovery_per_round:
        Number of additional random peers each peer discovers per round
        (tracker/gossip stand-in).
    warmup_rounds:
        Rounds excluded from throughput accounting (bootstrap transient).
    stranger_bandwidth_cap:
        Maximum fraction of capacity spent on strangers per round.
    history_rounds:
        Rounds of interaction history retained per peer (must cover the
        largest candidate window, i.e. at least 2).
    aspiration_smoothing:
        Exponential smoothing factor of the Sort Adaptive aspiration level.
    dynamics:
        Optional compiled scenario dynamics (churn waves, behaviour shifts,
        pinned initial capacities; see :mod:`repro.sim.dynamics`).  ``None``
        — the default — runs the unmodified legacy path, bit-identical to
        the golden reference engine.
    population:
        Optional variable-population dynamics (true arrivals/departures;
        see :class:`~repro.sim.dynamics.PopulationDynamics`).  A non-trivial
        bundle routes the run onto the variable-population engine, where
        ``n_peers`` is the *initial* population and the active set grows
        and shrinks over the run.  Mutually exclusive with ``churn_rate``
        and ``dynamics`` (the population process owns all arrivals and
        departures).
    """

    n_peers: int = 50
    rounds: int = 500
    bandwidth: Optional[BandwidthDistribution] = None
    churn_rate: float = 0.0
    requests_per_round: int = 1
    discovery_per_round: int = 2
    warmup_rounds: int = 0
    stranger_bandwidth_cap: float = 0.5
    history_rounds: int = 3
    aspiration_smoothing: float = 0.25
    dynamics: Optional[ScenarioDynamics] = None
    population: Optional[PopulationDynamics] = None

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("n_peers must be at least 2")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")
        if self.requests_per_round < 0:
            raise ValueError("requests_per_round must be >= 0")
        if self.discovery_per_round < 0:
            raise ValueError("discovery_per_round must be >= 0")
        if not 0 <= self.warmup_rounds < self.rounds:
            raise ValueError("warmup_rounds must be in [0, rounds)")
        if not 0.0 <= self.stranger_bandwidth_cap <= 1.0:
            raise ValueError("stranger_bandwidth_cap must be in [0, 1]")
        if self.history_rounds < 2:
            raise ValueError("history_rounds must be at least 2 (TF2T window)")
        if not 0.0 < self.aspiration_smoothing <= 1.0:
            raise ValueError("aspiration_smoothing must be in (0, 1]")
        if self.dynamics is not None:
            capacities = self.dynamics.initial_capacities
            if capacities is not None and len(capacities) != self.n_peers:
                raise ValueError(
                    f"dynamics pins {len(capacities)} initial capacities "
                    f"for {self.n_peers} peers"
                )
            if self.dynamics.max_peer_id() >= self.n_peers:
                raise ValueError(
                    "dynamics references peer id "
                    f"{self.dynamics.max_peer_id()} outside [0, {self.n_peers})"
                )
        if self.population is not None and not self.population.is_trivial():
            if self.churn_rate != 0.0:
                raise ValueError(
                    "population dynamics and churn_rate are mutually exclusive; "
                    "express departures via the DepartureProcess"
                )
            if self.dynamics is not None:
                raise ValueError(
                    "population dynamics and scenario dynamics are mutually "
                    "exclusive (waves and shifts address fixed peer slots)"
                )
            if 0 < self.population.max_active < self.n_peers:
                raise ValueError(
                    f"max_active ({self.population.max_active}) must not be "
                    f"below the initial population ({self.n_peers})"
                )

    @property
    def is_variable_population(self) -> bool:
        """Whether this run executes on the variable-population engine."""
        return self.population is not None and not self.population.is_trivial()

    def distribution(self) -> BandwidthDistribution:
        """The effective bandwidth distribution (Piatek-style by default)."""
        return self.bandwidth if self.bandwidth is not None else piatek_distribution()

    def with_(self, **changes) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def measured_rounds(self) -> int:
        """Number of rounds included in throughput accounting."""
        return self.rounds - self.warmup_rounds

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "SimulationConfig":
        """The configuration used by the paper's PRA experiments (50 peers, 500 rounds)."""
        return cls(n_peers=50, rounds=500)

    @classmethod
    def small(cls) -> "SimulationConfig":
        """A reduced configuration suitable for benchmark sweeps."""
        return cls(n_peers=16, rounds=40)

    @classmethod
    def smoke(cls) -> "SimulationConfig":
        """A minimal configuration for fast unit tests."""
        return cls(n_peers=10, rounds=15)
