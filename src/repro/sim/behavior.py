"""Executable peer behaviour: the actualized protocol dimensions of Section 4.2.

A :class:`PeerBehavior` is the *executable* form of a protocol from the
design space: it fixes one actualization for every dimension the paper
sweeps —

* **stranger policy** (B1 Periodic / B2 When-needed / B3 Defect, plus the
  degenerate "no strangers" policy) and the number of strangers ``h``,
* **candidate list** (C1 TFT — peers seen interacting in the last round,
  C2 TF2T — last two rounds),
* **ranking function** (I1 Sort Fastest, I2 Sort Slowest, I3 Sort Proximity
  as in Birds, I4 Sort Adaptive, I5 Sort Loyal, I6 Random),
* **number of partners** ``k`` (0-9),
* **resource allocation** (R1 Equal Split, R2 Prop Share, R3 Freeride).

The DSA layer (:mod:`repro.core.protocol`) wraps a :class:`PeerBehavior` with
design-space metadata; the simulation engine only ever sees behaviours, which
keeps the substrate independent of the analysis framework built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

__all__ = [
    "PeerBehavior",
    "STRANGER_POLICIES",
    "CANDIDATE_POLICIES",
    "RANKING_FUNCTIONS",
    "ALLOCATION_POLICIES",
    "STRANGER_POLICY_CODES",
    "CANDIDATE_POLICY_CODES",
    "RANKING_CODES",
    "ALLOCATION_CODES",
    "MAX_PARTNERS",
    "MAX_STRANGERS",
]

#: Stranger-policy actualizations (paper labels in parentheses).
STRANGER_POLICIES: Tuple[str, ...] = (
    "none",         # the extra 10th policy: zero strangers
    "periodic",     # B1: cooperate with up to h strangers periodically
    "when_needed",  # B2: cooperate with strangers only when partner set not full
    "defect",       # B3: always defect on strangers (explicit refusal)
)

#: Candidate-list actualizations.
CANDIDATE_POLICIES: Tuple[str, ...] = (
    "tft",   # C1: peers that interacted with us in the last round
    "tf2t",  # C2: peers that interacted with us in either of the last two rounds
)

#: Ranking-function actualizations.
RANKING_FUNCTIONS: Tuple[str, ...] = (
    "fastest",    # I1
    "slowest",    # I2
    "proximity",  # I3 (Birds)
    "adaptive",   # I4 (aspiration-based, Win-Stay-Lose-Shift inspired)
    "loyal",      # I5
    "random",     # I6
)

#: Resource-allocation actualizations.
ALLOCATION_POLICIES: Tuple[str, ...] = (
    "equal_split",  # R1
    "prop_share",   # R2
    "freeride",     # R3
)

#: Paper sweep bounds: k in [0, 9], h in [0, 3].
MAX_PARTNERS = 9
MAX_STRANGERS = 3

#: Field value -> paper dimension code, per coded dimension.  The single
#: source for behaviour labels, protocol coordinates (repro.core.protocol)
#: and atlas axis parsing (repro.core.design_space) — adding or renaming an
#: actualization happens here once.
STRANGER_POLICY_CODES: Dict[str, str] = {
    "none": "B0", "periodic": "B1", "when_needed": "B2", "defect": "B3",
}
CANDIDATE_POLICY_CODES: Dict[str, str] = {"tft": "C1", "tf2t": "C2"}
RANKING_CODES: Dict[str, str] = {
    "fastest": "I1",
    "slowest": "I2",
    "proximity": "I3",
    "adaptive": "I4",
    "loyal": "I5",
    "random": "I6",
}
ALLOCATION_CODES: Dict[str, str] = {
    "equal_split": "R1", "prop_share": "R2", "freeride": "R3",
}


@dataclass(frozen=True)
class PeerBehavior:
    """One fully-actualized protocol, as executed by the simulation engine.

    Parameters
    ----------
    stranger_policy:
        One of :data:`STRANGER_POLICIES`.
    stranger_count:
        ``h``, the maximum number of strangers cooperated with at a time
        (must be 0 iff the policy is ``"none"`` or ``"defect"``-with-zero; the
        paper uses 1-3 for B1/B2/B3).
    candidate_policy:
        One of :data:`CANDIDATE_POLICIES`.
    ranking:
        One of :data:`RANKING_FUNCTIONS`.
    partner_count:
        ``k``, the maximum number of partners selected from the ranked
        candidate list (0-9; 0 is the degenerate "no partners" protocol).
    allocation:
        One of :data:`ALLOCATION_POLICIES`.
    stranger_period:
        Period (in rounds) of the B1 Periodic policy; 1 means every round.
    """

    stranger_policy: str = "periodic"
    stranger_count: int = 1
    candidate_policy: str = "tft"
    ranking: str = "fastest"
    partner_count: int = 4
    allocation: str = "equal_split"
    stranger_period: int = 1

    def __post_init__(self) -> None:
        if self.stranger_policy not in STRANGER_POLICIES:
            raise ValueError(
                f"unknown stranger_policy {self.stranger_policy!r}; "
                f"expected one of {STRANGER_POLICIES}"
            )
        if self.candidate_policy not in CANDIDATE_POLICIES:
            raise ValueError(
                f"unknown candidate_policy {self.candidate_policy!r}; "
                f"expected one of {CANDIDATE_POLICIES}"
            )
        if self.ranking not in RANKING_FUNCTIONS:
            raise ValueError(
                f"unknown ranking {self.ranking!r}; expected one of {RANKING_FUNCTIONS}"
            )
        if self.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"unknown allocation {self.allocation!r}; "
                f"expected one of {ALLOCATION_POLICIES}"
            )
        if not 0 <= self.partner_count <= MAX_PARTNERS:
            raise ValueError(
                f"partner_count must be in [0, {MAX_PARTNERS}], got {self.partner_count}"
            )
        if not 0 <= self.stranger_count <= MAX_STRANGERS:
            raise ValueError(
                f"stranger_count must be in [0, {MAX_STRANGERS}], got {self.stranger_count}"
            )
        if self.stranger_policy == "none" and self.stranger_count != 0:
            raise ValueError("stranger_policy 'none' requires stranger_count == 0")
        if self.stranger_policy in ("periodic", "when_needed") and self.stranger_count == 0:
            raise ValueError(
                f"stranger_policy {self.stranger_policy!r} requires stranger_count >= 1"
            )
        if self.stranger_period < 1:
            raise ValueError("stranger_period must be >= 1")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def candidate_window(self) -> int:
        """History window (in rounds) of the candidate list (1 for TFT, 2 for TF2T)."""
        return 1 if self.candidate_policy == "tft" else 2

    @property
    def total_slots(self) -> int:
        """Nominal upload slots: partners plus stranger slots (at least 0)."""
        return self.partner_count + self.stranger_count

    @property
    def uploads_nothing(self) -> bool:
        """Whether this behaviour can never upload anything.

        A peer uploads nothing when it freerides on partners *and* has no
        stranger slots (or defects on strangers), or when it has zero slots
        altogether.
        """
        gives_to_strangers = self.stranger_policy in ("periodic", "when_needed")
        gives_to_partners = self.allocation != "freeride" and self.partner_count > 0
        return not (gives_to_strangers or gives_to_partners)

    def with_(self, **changes) -> "PeerBehavior":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # scenario presets
    # ------------------------------------------------------------------ #
    @classmethod
    def free_rider(cls) -> "PeerBehavior":
        """A peer that contributes nothing: freerides on partners, defects on strangers.

        The behaviour free-rider-wave scenarios switch peers onto; it keeps
        requesting and receiving but never uploads
        (:attr:`uploads_nothing` is true).
        """
        return cls(
            stranger_policy="defect",
            stranger_count=0,
            candidate_policy="tft",
            ranking="fastest",
            partner_count=4,
            allocation="freeride",
        )

    @classmethod
    def colluder(cls) -> "PeerBehavior":
        """A clique member: loyal to established partners, defects on all strangers.

        Approximates a colluding group within the design space's primitives:
        Sort Loyal locks the peer onto consistently-reciprocating partners
        (in a group that switches on together, predominantly each other)
        while the Defect stranger policy refuses bandwidth to outsiders.
        """
        return cls(
            stranger_policy="defect",
            stranger_count=2,
            candidate_policy="tf2t",
            ranking="loyal",
            partner_count=3,
            allocation="equal_split",
        )

    @classmethod
    def generous_seed(cls) -> "PeerBehavior":
        """A seed-like altruist: maximum stranger slots, equal split to partners.

        Used for the seeder side of seed/leecher-asymmetric populations —
        it hands out bandwidth to strangers every round and never freerides.
        """
        return cls(
            stranger_policy="periodic",
            stranger_count=MAX_STRANGERS,
            candidate_policy="tf2t",
            ranking="random",
            partner_count=6,
            allocation="equal_split",
        )

    def label(self) -> str:
        """A compact human-readable label, e.g. ``"B2h2-C1-I5k7-R2"``."""
        return (
            f"{STRANGER_POLICY_CODES[self.stranger_policy]}h{self.stranger_count}-"
            f"{CANDIDATE_POLICY_CODES[self.candidate_policy]}-"
            f"{RANKING_CODES[self.ranking]}k{self.partner_count}-"
            f"{ALLOCATION_CODES[self.allocation]}"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "stranger_policy": self.stranger_policy,
            "stranger_count": self.stranger_count,
            "candidate_policy": self.candidate_policy,
            "ranking": self.ranking,
            "partner_count": self.partner_count,
            "allocation": self.allocation,
            "stranger_period": self.stranger_period,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PeerBehavior":
        """Inverse of :meth:`as_dict`."""
        return cls(
            stranger_policy=str(data["stranger_policy"]),
            stranger_count=int(data["stranger_count"]),
            candidate_policy=str(data["candidate_policy"]),
            ranking=str(data["ranking"]),
            partner_count=int(data["partner_count"]),
            allocation=str(data["allocation"]),
            stranger_period=int(data.get("stranger_period", 1)),
        )
