"""Metrics computed over simulation results.

The PRA quantification needs two numbers from every run:

* for **Performance** runs (homogeneous population): the population
  throughput — the sum of bandwidth received by all peers, per measured
  round;
* for **Robustness / Aggressiveness** encounters (two sub-populations): the
  average per-peer download of each protocol group, so the groups can be
  compared.

:func:`compute_group_metrics` produces both from per-peer records, plus
capacity-utilisation figures used in tests and the ablation benchmarks.

Variable-population runs additionally label every record with its join-time
*cohort* (initial population / genuine arrival / whitewash rejoin) and the
number of measured rounds the identity was actually present.
:func:`compute_cohort_metrics` normalises transfers by those peer-rounds —
download **per peer per round present** — which is what makes PRA measures
comparable between cohorts of different sizes and lifespans, and between
runs whose active population differs over time.

The robustness atlas (:mod:`repro.atlas`) crosses both axes:
:func:`compute_group_cohort_metrics` keys the per-peer-round PRA measures,
download shares and departure (identity-eviction) rates by **(behaviour
group, cohort)** — the numbers that say who wins *inside* a flash crowd or
a colluder clique, for fixed- and variable-population runs alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PeerRecord",
    "GroupMetrics",
    "CohortMetrics",
    "GroupCohortMetrics",
    "compute_group_metrics",
    "compute_cohort_metrics",
    "compute_group_cohort_metrics",
    "population_throughput",
]


@dataclass(frozen=True)
class PeerRecord:
    """Per-peer accounting extracted from a finished simulation run.

    The population-lifecycle fields keep their defaults on fixed-population
    runs (every peer is an ``"initial"`` cohort member present for the whole
    measured window); the variable-population engine fills them in.
    ``rounds_present`` counts *measured* rounds the identity was active
    (``None`` means the full measured window).
    """

    peer_id: int
    group: str
    upload_capacity: float
    behavior_label: str
    downloaded: float
    uploaded: float
    cohort: str = "initial"
    joined_round: int = 0
    departed_round: Optional[int] = None
    rounds_present: Optional[int] = None


@dataclass(frozen=True)
class GroupMetrics:
    """Aggregate metrics for one protocol group within a run."""

    group: str
    peer_count: int
    total_downloaded: float
    total_uploaded: float
    mean_downloaded: float
    mean_uploaded: float
    total_capacity: float

    @property
    def upload_utilization(self) -> float:
        """Fraction of the group's aggregate upload capacity actually used."""
        if self.total_capacity <= 0:
            return 0.0
        return self.total_uploaded / self.total_capacity


def compute_group_metrics(
    records: Sequence[PeerRecord], measured_rounds: int
) -> Dict[str, GroupMetrics]:
    """Compute :class:`GroupMetrics` for every group present in ``records``.

    ``measured_rounds`` is used to express capacity in the same units as the
    cumulative transfer totals (capacity per round times number of measured
    rounds).
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    groups: Dict[str, List[PeerRecord]] = {}
    for record in records:
        groups.setdefault(record.group, []).append(record)

    metrics: Dict[str, GroupMetrics] = {}
    for group, members in groups.items():
        total_down = sum(m.downloaded for m in members)
        total_up = sum(m.uploaded for m in members)
        capacity = sum(m.upload_capacity for m in members) * measured_rounds
        count = len(members)
        metrics[group] = GroupMetrics(
            group=group,
            peer_count=count,
            total_downloaded=total_down,
            total_uploaded=total_up,
            mean_downloaded=total_down / count,
            mean_uploaded=total_up / count,
            total_capacity=capacity,
        )
    return metrics


@dataclass(frozen=True)
class CohortMetrics:
    """Aggregate metrics for one join-time cohort within a run.

    ``peer_rounds`` is the cohort's total exposure — the sum over members of
    the measured rounds each was present — and the ``*_per_peer_round``
    figures divide by it.  That normalisation is what makes the PRA measures
    of a 5-peer late-arriving cohort comparable to a 50-peer incumbent one.
    """

    cohort: str
    peer_count: int
    peer_rounds: int
    total_downloaded: float
    total_uploaded: float
    mean_downloaded: float
    mean_uploaded: float
    downloaded_per_peer_round: float
    uploaded_per_peer_round: float


def compute_cohort_metrics(
    records: Sequence[PeerRecord], measured_rounds: int
) -> Dict[str, CohortMetrics]:
    """Compute :class:`CohortMetrics` for every cohort present in ``records``.

    Records whose ``rounds_present`` is ``None`` (fixed-population runs)
    count as present for all ``measured_rounds``.  Members present for zero
    measured rounds contribute peers but no exposure; a cohort with zero
    total exposure reports zero per-peer-round rates.
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    cohorts: Dict[str, List[PeerRecord]] = {}
    for record in records:
        cohorts.setdefault(record.cohort, []).append(record)

    metrics: Dict[str, CohortMetrics] = {}
    for cohort, members in cohorts.items():
        total_down = sum(m.downloaded for m in members)
        total_up = sum(m.uploaded for m in members)
        peer_rounds = sum(
            m.rounds_present if m.rounds_present is not None else measured_rounds
            for m in members
        )
        count = len(members)
        metrics[cohort] = CohortMetrics(
            cohort=cohort,
            peer_count=count,
            peer_rounds=peer_rounds,
            total_downloaded=total_down,
            total_uploaded=total_up,
            mean_downloaded=total_down / count,
            mean_uploaded=total_up / count,
            downloaded_per_peer_round=total_down / peer_rounds if peer_rounds else 0.0,
            uploaded_per_peer_round=total_up / peer_rounds if peer_rounds else 0.0,
        )
    return metrics


@dataclass(frozen=True)
class GroupCohortMetrics:
    """Aggregate metrics for one (behaviour group, cohort) cell of a run.

    The normalisations mirror :class:`CohortMetrics` (transfers divided by
    the cell's peer-rounds of presence) with two additions the adversarial
    analyses need: ``download_share`` — the cell's fraction of the run's
    total download, which says who *wins* inside a hostile workload — and
    ``departure_rate`` — the fraction of the cell's identities evicted
    (truly departed) before the run ended, which exposes targeted identity
    churn such as colluder whitewashing.
    """

    group: str
    cohort: str
    peer_count: int
    peer_rounds: int
    total_downloaded: float
    total_uploaded: float
    downloaded_per_peer_round: float
    uploaded_per_peer_round: float
    download_share: float
    departures: int

    @property
    def departure_rate(self) -> float:
        """Fraction of the cell's identities that departed during the run."""
        return self.departures / self.peer_count


def compute_group_cohort_metrics(
    records: Sequence[PeerRecord], measured_rounds: int
) -> Dict[Tuple[str, str], GroupCohortMetrics]:
    """Compute :class:`GroupCohortMetrics` for every (group, cohort) present.

    Follows the :func:`compute_cohort_metrics` conventions: records without
    ``rounds_present`` (fixed-population runs) count as present for all
    ``measured_rounds``, and a cell with zero exposure reports zero
    per-peer-round rates.  ``download_share`` divides by the total download
    over *all* records (0 when nothing was transferred), so shares sum to 1
    across cells whenever anything flowed.
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    cells: Dict[Tuple[str, str], List[PeerRecord]] = {}
    for record in records:
        cells.setdefault((record.group, record.cohort), []).append(record)
    grand_total_down = sum(record.downloaded for record in records)

    metrics: Dict[Tuple[str, str], GroupCohortMetrics] = {}
    for (group, cohort), members in cells.items():
        total_down = sum(m.downloaded for m in members)
        total_up = sum(m.uploaded for m in members)
        peer_rounds = sum(
            m.rounds_present if m.rounds_present is not None else measured_rounds
            for m in members
        )
        metrics[(group, cohort)] = GroupCohortMetrics(
            group=group,
            cohort=cohort,
            peer_count=len(members),
            peer_rounds=peer_rounds,
            total_downloaded=total_down,
            total_uploaded=total_up,
            downloaded_per_peer_round=total_down / peer_rounds if peer_rounds else 0.0,
            uploaded_per_peer_round=total_up / peer_rounds if peer_rounds else 0.0,
            download_share=total_down / grand_total_down if grand_total_down else 0.0,
            departures=sum(1 for m in members if m.departed_round is not None),
        )
    return metrics


def population_throughput(records: Sequence[PeerRecord], measured_rounds: int) -> float:
    """Population throughput: total bandwidth received per measured round.

    This is the paper's Performance measure for a homogeneous run (before
    normalisation over the design space).
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    return sum(record.downloaded for record in records) / measured_rounds
