"""Metrics computed over simulation results.

The PRA quantification needs two numbers from every run:

* for **Performance** runs (homogeneous population): the population
  throughput — the sum of bandwidth received by all peers, per measured
  round;
* for **Robustness / Aggressiveness** encounters (two sub-populations): the
  average per-peer download of each protocol group, so the groups can be
  compared.

:func:`compute_group_metrics` produces both from per-peer records, plus
capacity-utilisation figures used in tests and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

__all__ = ["PeerRecord", "GroupMetrics", "compute_group_metrics", "population_throughput"]


@dataclass(frozen=True)
class PeerRecord:
    """Per-peer accounting extracted from a finished simulation run."""

    peer_id: int
    group: str
    upload_capacity: float
    behavior_label: str
    downloaded: float
    uploaded: float


@dataclass(frozen=True)
class GroupMetrics:
    """Aggregate metrics for one protocol group within a run."""

    group: str
    peer_count: int
    total_downloaded: float
    total_uploaded: float
    mean_downloaded: float
    mean_uploaded: float
    total_capacity: float

    @property
    def upload_utilization(self) -> float:
        """Fraction of the group's aggregate upload capacity actually used."""
        if self.total_capacity <= 0:
            return 0.0
        return self.total_uploaded / self.total_capacity


def compute_group_metrics(
    records: Sequence[PeerRecord], measured_rounds: int
) -> Dict[str, GroupMetrics]:
    """Compute :class:`GroupMetrics` for every group present in ``records``.

    ``measured_rounds`` is used to express capacity in the same units as the
    cumulative transfer totals (capacity per round times number of measured
    rounds).
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    groups: Dict[str, List[PeerRecord]] = {}
    for record in records:
        groups.setdefault(record.group, []).append(record)

    metrics: Dict[str, GroupMetrics] = {}
    for group, members in groups.items():
        total_down = sum(m.downloaded for m in members)
        total_up = sum(m.uploaded for m in members)
        capacity = sum(m.upload_capacity for m in members) * measured_rounds
        count = len(members)
        metrics[group] = GroupMetrics(
            group=group,
            peer_count=count,
            total_downloaded=total_down,
            total_uploaded=total_up,
            mean_downloaded=total_down / count,
            mean_uploaded=total_up / count,
            total_capacity=capacity,
        )
    return metrics


def population_throughput(records: Sequence[PeerRecord], measured_rounds: int) -> float:
    """Population throughput: total bandwidth received per measured round.

    This is the paper's Performance measure for a homogeneous run (before
    normalisation over the design space).
    """
    if measured_rounds < 1:
        raise ValueError("measured_rounds must be >= 1")
    return sum(record.downloaded for record in records) / measured_rounds
