"""Resource-allocation policies (dimension R of the design space).

Once a peer has selected its partners and the strangers to cooperate with,
the allocation policy decides how its upload capacity is divided:

* **R1 Equal Split** — every selected partner receives one equal slot
  (BitTorrent's equal-split unchoking);
* **R2 Prop Share** — the partner budget is divided in proportion to what
  each partner contributed over the candidate window (Levin et al.'s
  proportional-share auction view); partners that contributed nothing receive
  nothing, which is what makes the Defect-stranger + PropShare combination
  fail to bootstrap (Section 4.4);
* **R3 Freeride** — partners receive nothing at all (the allocation is still
  recorded as an observable zero-amount interaction).

Capacity is divided over the *active* slots of the round — the selected
partners plus the strangers being cooperated with.  A peer that ends a round
with no active slots (no candidates and a stranger policy that refuses to
cooperate) uploads nothing that round; a freerider reserves its partner slots
but sends nothing on them, wasting that share of its capacity.  These two
effects are the throughput mechanisms behind the performance results of
Section 4.4 (see DESIGN.md, "deliberate modelling decisions").

Cooperating strangers receive one slot each, subject to a configurable cap on
the total fraction of capacity spent on strangers per round (strangers are of
unknown quality, so no sensible client dedicates most of its capacity to
them — BitTorrent itself reserves roughly one slot in five for optimistic
unchokes).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.sim.peer import PeerState

__all__ = ["allocate_upload"]


def allocate_upload(
    peer: PeerState,
    partners: Sequence[int],
    strangers: Sequence[int],
    current_round: int,
    stranger_bandwidth_cap: float = 0.5,
) -> Dict[int, float]:
    """Compute the peer's upload allocation for this round.

    Parameters
    ----------
    peer:
        The allocating peer.
    partners:
        Selected partners (already capped at ``k`` by the engine).
    strangers:
        Strangers the stranger policy decided to cooperate with.
    current_round:
        Round being decided (used to look up recent contributions for
        Prop Share).
    stranger_bandwidth_cap:
        Maximum fraction of upload capacity that may go to strangers in one
        round.

    Returns
    -------
    dict
        Mapping ``target peer id -> amount``; zero amounts are included so
        the engine records them as observable interactions (an explicit
        "you got nothing from me this round").
    """
    if not 0.0 <= stranger_bandwidth_cap <= 1.0:
        raise ValueError("stranger_bandwidth_cap must be in [0, 1]")

    behavior = peer.behavior
    allocation: Dict[int, float] = {}
    active_slots = len(partners) + len(strangers)
    if active_slots == 0:
        return allocation
    per_slot = peer.upload_capacity / active_slots

    # ------------------------------------------------------------------ #
    # strangers: one slot each, capped in aggregate
    # ------------------------------------------------------------------ #
    if strangers:
        stranger_budget = min(
            per_slot * len(strangers),
            stranger_bandwidth_cap * peer.upload_capacity,
        )
        per_stranger = stranger_budget / len(strangers)
        for stranger in strangers:
            allocation[stranger] = per_stranger

    # ------------------------------------------------------------------ #
    # partners: policy-dependent division of the partner budget
    # ------------------------------------------------------------------ #
    if not partners:
        return allocation

    policy = behavior.allocation
    if policy == "freeride":
        for partner in partners:
            allocation[partner] = 0.0
        return allocation

    if policy == "equal_split":
        for partner in partners:
            allocation[partner] = per_slot
        return allocation

    if policy == "prop_share":
        window = behavior.candidate_window
        buckets = peer.history.window_buckets(current_round, window)
        contributions = {}
        for partner in partners:
            total = 0.0
            for bucket in buckets:
                total += bucket.get(partner, 0.0)
            contributions[partner] = total
        total_contribution = sum(contributions.values())
        budget = per_slot * len(partners)
        if total_contribution <= 0.0:
            # Nobody contributed: nothing is reciprocated.  (Strangers, if
            # any, still received their slots above — that is the lightweight
            # bootstrapping path the paper contrasts with cryptographic
            # bootstrapping.)
            for partner in partners:
                allocation[partner] = 0.0
            return allocation
        for partner in partners:
            allocation[partner] = budget * contributions[partner] / total_contribution
        return allocation

    raise ValueError(f"unknown allocation policy {policy!r}")  # pragma: no cover
