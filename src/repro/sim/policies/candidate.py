"""Candidate-list policies (dimension C of the design space).

The candidate list is the set of peers a peer considers for partner
selection.  The paper actualizes two policies:

* **C1 (TFT)** — peers observed interacting with us in the last round;
* **C2 (TF2T)** — peers observed interacting with us in either of the last
  two rounds (a more forgiving window, taken from Axelrod's Tit-for-Two-Tats).

"Interacting" includes explicit zero-amount responses (a refusal under the
Defect stranger policy, or an empty Freeride/PropShare allocation): the peer
observed an action by the other and can rank it — which is precisely what
allows the counter-intuitive Sort-Slowest dynamics discussed in Section 4.4.
"""

from __future__ import annotations

from typing import Set

from repro.sim.peer import PeerState

__all__ = ["candidate_list"]


def candidate_list(peer: PeerState, current_round: int) -> Set[int]:
    """Return the candidate set of ``peer`` at the start of ``current_round``.

    The window length is derived from the peer's candidate policy (1 round
    for TFT, 2 for TF2T).  The peer itself is never a candidate.
    """
    window = peer.behavior.candidate_window
    candidates = peer.history.senders_in_window(current_round, window)
    candidates.discard(peer.peer_id)
    return candidates
