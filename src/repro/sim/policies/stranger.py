"""Stranger policies (dimension B of the design space).

A *stranger* is a peer about which no recent history exists — past behaviour
cannot inform the decision, so a dedicated policy is needed.  The paper
actualizes three policies plus the degenerate zero-stranger variant:

* **B1 Periodic** — cooperate with up to ``h`` strangers periodically (every
  ``stranger_period`` rounds; the reference BitTorrent optimistic unchoke is
  the special case of one stranger every period);
* **B2 When needed** — cooperate with up to ``h`` strangers only when the
  partner set is not full (inspired by Izhak-Ratzin's collaboration scheme);
* **B3 Defect** — never give resources to strangers; incoming contacts are
  answered with an explicit refusal (a zero-amount interaction the requester
  can observe);
* **none** — the extra policy with zero strangers: strangers are simply
  ignored (no refusal message either).

The decision returns both the strangers to cooperate with and the contacts to
explicitly refuse, because a refusal still creates an observable interaction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.peer import PeerState

__all__ = ["StrangerDecision", "stranger_decision"]


@dataclass(frozen=True)
class StrangerDecision:
    """Outcome of a stranger-policy evaluation for one round."""

    cooperate: List[int] = field(default_factory=list)
    refuse: List[int] = field(default_factory=list)


def _pick(
    pool: Sequence[int], preferred: Sequence[int], count: int, rng: random.Random
) -> List[int]:
    """Pick up to ``count`` ids from ``pool``, preferring ``preferred`` members."""
    if count <= 0 or not pool:
        return []
    preferred_set = set(preferred)
    first = [p for p in pool if p in preferred_set]
    rest = [p for p in pool if p not in preferred_set]
    rng.shuffle(first)
    rng.shuffle(rest)
    ordered = first + rest
    return ordered[:count]


def stranger_decision(
    peer: PeerState,
    stranger_pool: Sequence[int],
    selected_partner_count: int,
    current_round: int,
    rng: random.Random,
) -> StrangerDecision:
    """Evaluate the peer's stranger policy for ``current_round``.

    Parameters
    ----------
    peer:
        The deciding peer.
    stranger_pool:
        Peers eligible for stranger treatment this round (recent contacts and
        discoveries that are neither partners nor candidates).
    selected_partner_count:
        How many partners the peer selected this round (the When-needed
        policy cooperates with strangers only when this is below ``k``).
    current_round:
        Round index (used by the Periodic policy).
    rng:
        Random generator for choosing among eligible strangers.
    """
    behavior = peer.behavior
    policy = behavior.stranger_policy
    h = behavior.stranger_count
    requesters = [p for p in stranger_pool if p in peer.pending_requests]

    if policy == "none":
        return StrangerDecision()

    if policy == "defect":
        # Explicitly refuse up to h (at least one) incoming contacts so the
        # refused peers observe the interaction.
        refusals = _pick(requesters, requesters, max(1, h), rng)
        return StrangerDecision(refuse=refusals)

    if policy == "periodic":
        if current_round % behavior.stranger_period != 0:
            return StrangerDecision()
        return StrangerDecision(
            cooperate=_pick(stranger_pool, requesters, h, rng)
        )

    if policy == "when_needed":
        if selected_partner_count >= behavior.partner_count:
            return StrangerDecision()
        return StrangerDecision(
            cooperate=_pick(stranger_pool, requesters, h, rng)
        )

    raise ValueError(f"unknown stranger policy {policy!r}")  # pragma: no cover
