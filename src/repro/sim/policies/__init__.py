"""Policy implementations for the actualized protocol dimensions.

Each module implements one dimension of the Section 4.2 design space as a
pure function over peer state:

* :mod:`repro.sim.policies.candidate` — candidate-list construction
  (C1 TFT, C2 TF2T),
* :mod:`repro.sim.policies.ranking` — ranking functions (I1-I6),
* :mod:`repro.sim.policies.stranger` — stranger policies (B1-B3 plus "none"),
* :mod:`repro.sim.policies.allocation` — resource allocation (R1-R3).
"""

from repro.sim.policies.allocation import allocate_upload
from repro.sim.policies.candidate import candidate_list
from repro.sim.policies.ranking import rank_candidates
from repro.sim.policies.stranger import StrangerDecision, stranger_decision

__all__ = [
    "candidate_list",
    "rank_candidates",
    "stranger_decision",
    "StrangerDecision",
    "allocate_upload",
]
