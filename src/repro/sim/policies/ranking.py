"""Ranking functions (dimension I of the design space).

Given a peer's candidate list, a ranking function orders the candidates; the
peer then selects the top ``k`` as partners.  The paper actualizes six
functions:

* **I1 Sort Fastest** — decreasing observed upload rate (BitTorrent's
  default behaviour);
* **I2 Sort Slowest** — increasing observed upload rate;
* **I3 Sort Proximity** — increasing distance between the candidate's
  observed rate and the peer's own per-slot upload rate (the Birds
  selection policy);
* **I4 Sort Adaptive** — increasing distance to an adaptive aspiration level
  (inspired by Win-Stay-Lose-Shift aspiration strategies);
* **I5 Sort Loyal** — decreasing duration of consecutive cooperation;
* **I6 Random** — uniformly random order.

Ties are broken randomly (via a pre-shuffle with the provided generator) so
no peer is systematically favoured by its identifier.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.sim.peer import PeerState

__all__ = ["rank_candidates"]


def _observed_rates(
    peer: PeerState, candidates: Iterable[int], current_round: int
) -> dict:
    window = peer.behavior.candidate_window
    buckets = peer.history.window_buckets(current_round, window)
    rates = {}
    for candidate in candidates:
        total = 0.0
        for bucket in buckets:
            total += bucket.get(candidate, 0.0)
        rates[candidate] = total / window
    return rates


def rank_candidates(
    peer: PeerState,
    candidates: Iterable[int],
    current_round: int,
    rng: random.Random,
) -> List[int]:
    """Return ``candidates`` ordered best-first according to the peer's ranking.

    Parameters
    ----------
    peer:
        The ranking peer (provides behaviour, history, loyalty, aspiration).
    candidates:
        Candidate peer ids (any iterable; consumed once).
    current_round:
        The round being decided; observed rates are computed over the
        candidate window ending just before this round.
    rng:
        Random generator used for tie-breaking and the Random ranking.
    """
    pool = list(candidates)
    if not pool:
        return []
    # Randomise first so that the subsequent stable sort breaks ties randomly.
    rng.shuffle(pool)

    ranking = peer.behavior.ranking
    if ranking == "random":
        return pool

    rates = _observed_rates(peer, pool, current_round)

    if ranking == "fastest":
        pool.sort(key=lambda c: rates[c], reverse=True)
    elif ranking == "slowest":
        pool.sort(key=lambda c: rates[c])
    elif ranking == "proximity":
        own_rate = peer.upload_capacity / max(1, peer.behavior.total_slots)
        pool.sort(key=lambda c: abs(rates[c] - own_rate))
    elif ranking == "adaptive":
        aspiration = peer.aspiration
        pool.sort(key=lambda c: abs(rates[c] - aspiration))
    elif ranking == "loyal":
        # Most loyal first; among equally loyal candidates prefer the faster.
        pool.sort(key=lambda c: (-peer.loyalty_of(c), -rates[c]))
    else:  # pragma: no cover - guarded by PeerBehavior validation
        raise ValueError(f"unknown ranking function {ranking!r}")
    return pool
