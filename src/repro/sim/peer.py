"""Per-peer simulation state.

A :class:`PeerState` bundles everything the engine tracks for one peer: its
identity and upload capacity, the behaviour (protocol) it executes, its
interaction history, loyalty counters (for the Sort Loyal ranking), its
adaptive aspiration level (for the Sort Adaptive ranking), incoming discovery
requests, and cumulative transfer accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.sim.behavior import PeerBehavior
from repro.sim.history import InteractionHistory

__all__ = ["PeerState"]


@dataclass(slots=True)
class PeerState:
    """Mutable state of one simulated peer.

    Attributes
    ----------
    peer_id:
        Stable integer identity within one simulation run.
    upload_capacity:
        Upload bandwidth per round (KBps-equivalent units).
    behavior:
        The protocol actualization this peer executes.
    group:
        Label of the protocol group the peer belongs to (used by PRA
        encounters to compare the two sub-populations).
    history:
        Interactions observed by this peer (who gave it how much, per round).
    loyalty:
        For each known peer, the number of *consecutive* recent rounds in
        which that peer delivered a positive amount — the quantity ranked by
        the Sort Loyal function (I5).
    aspiration:
        The adaptive aspiration level of the Sort Adaptive function (I4),
        updated every round from the peer's own received throughput.
    pending_requests:
        Peers that contacted this peer since its last decision (discovery /
        service requests); candidates for stranger treatment next round.
    total_downloaded, total_uploaded:
        Cumulative transfer accounting over the whole run.
    joined_round:
        Round at which the peer (re-)joined; reset by churn.
    cohort:
        Join-time cohort label under variable-population dynamics
        (``"initial"`` for the starting population, ``"arrival"`` for
        genuine newcomers, ``"whitewash"`` for departed peers re-entering
        under fresh identities).  Fixed-population runs leave the default.
    departed_round:
        Round at which the identity left the swarm for good (``None`` while
        active; only ever set by the variable-population engine).
    """

    peer_id: int
    upload_capacity: float
    behavior: PeerBehavior
    group: str = "default"
    history: InteractionHistory = field(default_factory=InteractionHistory)
    loyalty: Dict[int, int] = field(default_factory=dict)
    aspiration: float = 0.0
    pending_requests: Set[int] = field(default_factory=set)
    total_downloaded: float = 0.0
    total_uploaded: float = 0.0
    joined_round: int = 0
    cohort: str = "initial"
    departed_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.upload_capacity <= 0:
            raise ValueError("upload_capacity must be positive")
        if self.aspiration == 0.0:
            # A newly joined peer aspires to receive roughly what it can give:
            # its own capacity spread over its nominal slot count.
            self.aspiration = self.upload_capacity / max(1, self.behavior.total_slots)

    # ------------------------------------------------------------------ #
    # loyalty tracking
    # ------------------------------------------------------------------ #
    def update_loyalty(self, round_index: int) -> None:
        """Update consecutive-cooperation counters from round ``round_index``'s records."""
        bucket = self.history.round_bucket(round_index)
        loyalty = self.loyalty
        givers = (
            {peer for peer, amount in bucket.items() if amount > 0} if bucket else ()
        )
        for peer in givers:
            loyalty[peer] = loyalty.get(peer, 0) + 1
        for peer in loyalty:
            if peer not in givers:
                loyalty[peer] = 0

    def loyalty_of(self, peer_id: int) -> int:
        """Consecutive cooperative rounds observed from ``peer_id``."""
        return self.loyalty.get(peer_id, 0)

    # ------------------------------------------------------------------ #
    # aspiration tracking (Sort Adaptive)
    # ------------------------------------------------------------------ #
    def update_aspiration(self, received_this_round: float, smoothing: float = 0.25) -> None:
        """Exponentially adapt the aspiration level towards recent per-partner receipts.

        The Sort Adaptive ranking (I4) ranks candidates by proximity to an
        aspiration level "which is adaptive and changes based on a peer's
        evaluation of its performance"; here the evaluation is the average
        amount received per filled slot this round.
        """
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        per_slot = received_this_round / max(1, self.behavior.total_slots)
        self.aspiration = (1.0 - smoothing) * self.aspiration + smoothing * per_slot

    # ------------------------------------------------------------------ #
    # identity lifecycle (variable-population engine)
    # ------------------------------------------------------------------ #
    @classmethod
    def spawn(
        cls,
        peer_id: int,
        upload_capacity: float,
        behavior: PeerBehavior,
        group: str,
        joined_round: int,
        cohort: str,
        history_rounds: int,
    ) -> "PeerState":
        """A genuinely new identity joining mid-run.

        Late joiners start with an empty interaction history window — they
        know nobody and nobody knows them — and the default aspiration of a
        fresh peer (capacity spread over nominal slots).
        """
        return cls(
            peer_id=peer_id,
            upload_capacity=upload_capacity,
            behavior=behavior,
            group=group,
            history=InteractionHistory(max_rounds=history_rounds),
            joined_round=joined_round,
            cohort=cohort,
        )

    def depart(self, round_index: int) -> None:
        """Mark this identity as having left the swarm for good."""
        self.departed_round = round_index

    # ------------------------------------------------------------------ #
    # churn support
    # ------------------------------------------------------------------ #
    def reset_for_rejoin(self, round_index: int) -> None:
        """Reset all session state, as if a fresh peer took over this slot."""
        self.history.clear()
        self.loyalty.clear()
        self.pending_requests.clear()
        self.aspiration = self.upload_capacity / max(1, self.behavior.total_slots)
        self.joined_round = round_index

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"PeerState(id={self.peer_id}, capacity={self.upload_capacity:g}, "
            f"group={self.group!r}, behavior={self.behavior.label()})"
        )
