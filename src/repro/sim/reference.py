"""Golden reference implementation of the cycle-based simulation engine.

This module is a **frozen, self-contained snapshot** of the seed engine
(:mod:`repro.sim.engine` plus the seed versions of the history container and
the four policy functions) taken immediately before the hot-path optimisation
pass.  It exists for one purpose: the golden-equivalence test suite
(``tests/sim/test_engine_equivalence.py``) runs :class:`ReferenceSimulation`
and the optimised :class:`repro.sim.engine.Simulation` on identical seeds and
asserts bit-identical :class:`~repro.sim.engine.SimulationResult` outputs.

Because of that role this module deliberately does **not** import the live
policy modules or :class:`~repro.sim.history.InteractionHistory` — any future
change to those must be proven equivalent against this snapshot, not silently
inherited by it.  Do not "clean up" or optimise this file; it is the spec.

The only shared dependencies are pure data/value types whose behaviour is
pinned by their own unit tests: :class:`~repro.sim.config.SimulationConfig`,
:class:`~repro.sim.behavior.PeerBehavior`, the bandwidth distributions, the
metric containers and :func:`repro.sim.churn.apply_churn`.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_churn
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult
from repro.sim.metrics import PeerRecord

__all__ = ["ReferenceSimulation"]


class _ReferenceHistory:
    """Seed snapshot of :class:`repro.sim.history.InteractionHistory`."""

    def __init__(self, max_rounds: int = 3):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = int(max_rounds)
        self._rounds: "OrderedDict[int, Dict[int, float]]" = OrderedDict()

    def record(self, round_index: int, sender: int, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        bucket = self._rounds.get(round_index)
        if bucket is None:
            bucket = {}
            self._rounds[round_index] = bucket
            self._trim()
        bucket[sender] = bucket.get(sender, 0.0) + float(amount)

    def _trim(self) -> None:
        while len(self._rounds) > self.max_rounds:
            self._rounds.popitem(last=False)

    def forget_peer(self, peer_id: int) -> None:
        for bucket in self._rounds.values():
            bucket.pop(peer_id, None)

    def clear(self) -> None:
        self._rounds.clear()

    def senders_in_window(self, current_round: int, window: int) -> Set[int]:
        if window < 1:
            raise ValueError("window must be >= 1")
        senders: Set[int] = set()
        for round_index in range(current_round - window, current_round):
            bucket = self._rounds.get(round_index)
            if bucket:
                senders.update(bucket.keys())
        return senders

    def amount_from(self, sender: int, round_index: int) -> float:
        bucket = self._rounds.get(round_index)
        if not bucket:
            return 0.0
        return bucket.get(sender, 0.0)

    def received_in_window(self, sender: int, current_round: int, window: int) -> float:
        total = 0.0
        for round_index in range(current_round - window, current_round):
            total += self.amount_from(sender, round_index)
        return total

    def observed_rate(self, sender: int, current_round: int, window: int) -> float:
        if window < 1:
            raise ValueError("window must be >= 1")
        return self.received_in_window(sender, current_round, window) / window

    def total_received(self, round_index: int) -> float:
        bucket = self._rounds.get(round_index)
        if not bucket:
            return 0.0
        return sum(bucket.values())

    def interactions_in_round(self, round_index: int) -> Dict[int, float]:
        return dict(self._rounds.get(round_index, {}))


class _ReferencePeer:
    """Seed snapshot of :class:`repro.sim.peer.PeerState` (engine-facing subset)."""

    __slots__ = (
        "peer_id",
        "upload_capacity",
        "behavior",
        "group",
        "history",
        "loyalty",
        "aspiration",
        "pending_requests",
        "total_downloaded",
        "total_uploaded",
        "joined_round",
    )

    def __init__(
        self,
        peer_id: int,
        upload_capacity: float,
        behavior: PeerBehavior,
        group: str,
        history: _ReferenceHistory,
    ):
        if upload_capacity <= 0:
            raise ValueError("upload_capacity must be positive")
        self.peer_id = peer_id
        self.upload_capacity = upload_capacity
        self.behavior = behavior
        self.group = group
        self.history = history
        self.loyalty: Dict[int, int] = {}
        self.aspiration = upload_capacity / max(1, behavior.total_slots)
        self.pending_requests: Set[int] = set()
        self.total_downloaded = 0.0
        self.total_uploaded = 0.0
        self.joined_round = 0

    def update_loyalty(self, round_index: int) -> None:
        interactions = self.history.interactions_in_round(round_index)
        givers = {peer for peer, amount in interactions.items() if amount > 0}
        for peer in givers:
            self.loyalty[peer] = self.loyalty.get(peer, 0) + 1
        for peer in list(self.loyalty.keys()):
            if peer not in givers:
                self.loyalty[peer] = 0

    def loyalty_of(self, peer_id: int) -> int:
        return self.loyalty.get(peer_id, 0)

    def update_aspiration(self, received_this_round: float, smoothing: float = 0.25) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        per_slot = received_this_round / max(1, self.behavior.total_slots)
        self.aspiration = (1.0 - smoothing) * self.aspiration + smoothing * per_slot

    def reset_for_rejoin(self, round_index: int) -> None:
        self.history.clear()
        self.loyalty.clear()
        self.pending_requests.clear()
        self.aspiration = self.upload_capacity / max(1, self.behavior.total_slots)
        self.joined_round = round_index


# ---------------------------------------------------------------------- #
# seed policy functions (verbatim semantics)
# ---------------------------------------------------------------------- #
def _candidate_list(peer: _ReferencePeer, current_round: int) -> Set[int]:
    window = peer.behavior.candidate_window
    candidates = peer.history.senders_in_window(current_round, window)
    candidates.discard(peer.peer_id)
    return candidates


def _observed_rates(peer: _ReferencePeer, candidates, current_round: int) -> dict:
    window = peer.behavior.candidate_window
    return {
        candidate: peer.history.observed_rate(candidate, current_round, window)
        for candidate in candidates
    }


def _rank_candidates(
    peer: _ReferencePeer, candidates, current_round: int, rng: random.Random
) -> List[int]:
    pool = list(candidates)
    if not pool:
        return []
    rng.shuffle(pool)

    ranking = peer.behavior.ranking
    if ranking == "random":
        return pool

    rates = _observed_rates(peer, pool, current_round)

    if ranking == "fastest":
        pool.sort(key=lambda c: rates[c], reverse=True)
    elif ranking == "slowest":
        pool.sort(key=lambda c: rates[c])
    elif ranking == "proximity":
        own_rate = peer.upload_capacity / max(1, peer.behavior.total_slots)
        pool.sort(key=lambda c: abs(rates[c] - own_rate))
    elif ranking == "adaptive":
        aspiration = peer.aspiration
        pool.sort(key=lambda c: abs(rates[c] - aspiration))
    elif ranking == "loyal":
        pool.sort(key=lambda c: (-peer.loyalty_of(c), -rates[c]))
    else:  # pragma: no cover - guarded by PeerBehavior validation
        raise ValueError(f"unknown ranking function {ranking!r}")
    return pool


def _pick(pool, preferred, count: int, rng: random.Random) -> List[int]:
    if count <= 0 or not pool:
        return []
    preferred_set = set(preferred)
    first = [p for p in pool if p in preferred_set]
    rest = [p for p in pool if p not in preferred_set]
    rng.shuffle(first)
    rng.shuffle(rest)
    ordered = first + rest
    return ordered[:count]


def _stranger_decision(
    peer: _ReferencePeer,
    stranger_pool,
    selected_partner_count: int,
    current_round: int,
    rng: random.Random,
) -> Tuple[List[int], List[int]]:
    """Returns ``(cooperate, refuse)``."""
    behavior = peer.behavior
    policy = behavior.stranger_policy
    h = behavior.stranger_count
    requesters = [p for p in stranger_pool if p in peer.pending_requests]

    if policy == "none":
        return [], []

    if policy == "defect":
        refusals = _pick(requesters, requesters, max(1, h), rng)
        return [], refusals

    if policy == "periodic":
        if current_round % behavior.stranger_period != 0:
            return [], []
        return _pick(stranger_pool, requesters, h, rng), []

    if policy == "when_needed":
        if selected_partner_count >= behavior.partner_count:
            return [], []
        return _pick(stranger_pool, requesters, h, rng), []

    raise ValueError(f"unknown stranger policy {policy!r}")  # pragma: no cover


def _allocate_upload(
    peer: _ReferencePeer,
    partners,
    strangers,
    current_round: int,
    stranger_bandwidth_cap: float = 0.5,
) -> Dict[int, float]:
    if not 0.0 <= stranger_bandwidth_cap <= 1.0:
        raise ValueError("stranger_bandwidth_cap must be in [0, 1]")

    behavior = peer.behavior
    allocation: Dict[int, float] = {}
    active_slots = len(partners) + len(strangers)
    if active_slots == 0:
        return allocation
    per_slot = peer.upload_capacity / active_slots

    if strangers:
        stranger_budget = min(
            per_slot * len(strangers),
            stranger_bandwidth_cap * peer.upload_capacity,
        )
        per_stranger = stranger_budget / len(strangers)
        for stranger in strangers:
            allocation[stranger] = per_stranger

    if not partners:
        return allocation

    policy = behavior.allocation
    if policy == "freeride":
        for partner in partners:
            allocation[partner] = 0.0
        return allocation

    if policy == "equal_split":
        for partner in partners:
            allocation[partner] = per_slot
        return allocation

    if policy == "prop_share":
        window = behavior.candidate_window
        contributions = {
            partner: peer.history.received_in_window(partner, current_round, window)
            for partner in partners
        }
        total_contribution = sum(contributions.values())
        budget = per_slot * len(partners)
        if total_contribution <= 0.0:
            for partner in partners:
                allocation[partner] = 0.0
            return allocation
        for partner in partners:
            allocation[partner] = budget * contributions[partner] / total_contribution
        return allocation

    raise ValueError(f"unknown allocation policy {policy!r}")  # pragma: no cover


class ReferenceSimulation:
    """The seed engine, verbatim: slow, simple and trusted.

    Constructor signature and :meth:`run` mirror
    :class:`repro.sim.engine.Simulation` exactly; given the same
    ``(config, behaviors, groups, seed)`` the two must produce bit-identical
    :class:`~repro.sim.engine.SimulationResult` values.
    """

    def __init__(
        self,
        config: SimulationConfig,
        behaviors: Sequence[PeerBehavior],
        groups: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ):
        self.config = config
        self._rng = random.Random(seed)

        behaviors = list(behaviors)
        if len(behaviors) == 1:
            behaviors = behaviors * config.n_peers
        if len(behaviors) != config.n_peers:
            raise ValueError(
                f"expected 1 or {config.n_peers} behaviors, got {len(behaviors)}"
            )

        if groups is None:
            group_labels = ["default"] * config.n_peers
        else:
            group_labels = list(groups)
            if len(group_labels) == 1:
                group_labels = group_labels * config.n_peers
            if len(group_labels) != config.n_peers:
                raise ValueError(
                    f"expected 1 or {config.n_peers} group labels, got {len(group_labels)}"
                )

        distribution = config.distribution()
        self.peers: List[_ReferencePeer] = []
        for peer_id in range(config.n_peers):
            capacity = distribution.sample(self._rng)
            self.peers.append(
                _ReferencePeer(
                    peer_id=peer_id,
                    upload_capacity=capacity,
                    behavior=behaviors[peer_id],
                    group=group_labels[peer_id],
                    history=_ReferenceHistory(max_rounds=config.history_rounds),
                )
            )
        self._peer_ids = [p.peer_id for p in self.peers]
        self._churn_events = 0
        self._explicit_refusals = 0
        self._measured_down: Dict[int, float] = {pid: 0.0 for pid in self._peer_ids}
        self._measured_up: Dict[int, float] = {pid: 0.0 for pid in self._peer_ids}

    # ------------------------------------------------------------------ #
    # round processing
    # ------------------------------------------------------------------ #
    def _decide_peer(
        self, peer: _ReferencePeer, round_index: int
    ) -> Tuple[Dict[int, float], List[int]]:
        config = self.config
        behavior = peer.behavior

        candidates = _candidate_list(peer, round_index)
        ranked = _rank_candidates(peer, candidates, round_index, self._rng)
        partners = ranked[: behavior.partner_count]
        partner_set = set(partners)

        pool = set(peer.pending_requests)
        if config.discovery_per_round > 0 and len(self._peer_ids) > 1:
            others = [pid for pid in self._peer_ids if pid != peer.peer_id]
            sample_size = min(config.discovery_per_round, len(others))
            pool.update(self._rng.sample(others, sample_size))
        pool.discard(peer.peer_id)
        pool -= partner_set
        pool -= candidates
        stranger_pool = sorted(pool)

        cooperate, refuse = _stranger_decision(
            peer, stranger_pool, len(partners), round_index, self._rng
        )

        allocation = _allocate_upload(
            peer,
            partners,
            cooperate,
            round_index,
            stranger_bandwidth_cap=config.stranger_bandwidth_cap,
        )
        for refused in refuse:
            allocation.setdefault(refused, 0.0)
            self._explicit_refusals += 1

        request_targets: List[int] = []
        if config.requests_per_round > 0 and len(self._peer_ids) > 1:
            eligible = [
                pid
                for pid in self._peer_ids
                if pid != peer.peer_id and pid not in partner_set
            ]
            if eligible:
                sample_size = min(config.requests_per_round, len(eligible))
                request_targets = self._rng.sample(eligible, sample_size)

        return allocation, request_targets

    def _run_round(self, round_index: int) -> None:
        config = self.config
        peers_by_id = {p.peer_id: p for p in self.peers}

        if config.churn_rate > 0.0:
            churned = apply_churn(
                self.peers,
                config.churn_rate,
                round_index,
                self._rng,
                config.distribution(),
            )
            self._churn_events += len(churned)

        decisions: List[Tuple[_ReferencePeer, Dict[int, float]]] = []
        incoming_requests: Dict[int, set] = {pid: set() for pid in self._peer_ids}
        for peer in self.peers:
            allocation, request_targets = self._decide_peer(peer, round_index)
            decisions.append((peer, allocation))
            for target in request_targets:
                incoming_requests[target].add(peer.peer_id)

        measuring = round_index >= config.warmup_rounds
        for peer, allocation in decisions:
            for target_id, amount in allocation.items():
                target = peers_by_id[target_id]
                target.history.record(round_index, peer.peer_id, amount)
                if amount > 0.0:
                    target.total_downloaded += amount
                    peer.total_uploaded += amount
                    if measuring:
                        self._measured_down[target_id] += amount
                        self._measured_up[peer.peer_id] += amount

        for peer in self.peers:
            peer.update_loyalty(round_index)
            received = peer.history.total_received(round_index)
            peer.update_aspiration(received, smoothing=config.aspiration_smoothing)
            peer.pending_requests = incoming_requests[peer.peer_id]

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all rounds and return the :class:`SimulationResult`."""
        for round_index in range(self.config.rounds):
            self._run_round(round_index)

        records = [
            PeerRecord(
                peer_id=peer.peer_id,
                group=peer.group,
                upload_capacity=peer.upload_capacity,
                behavior_label=peer.behavior.label(),
                downloaded=self._measured_down[peer.peer_id],
                uploaded=self._measured_up[peer.peer_id],
            )
            for peer in self.peers
        ]
        return SimulationResult(
            config=self.config,
            records=records,
            rounds_executed=self.config.rounds,
            churn_events=self._churn_events,
            total_explicit_refusals=self._explicit_refusals,
        )
