"""Shared round-core of the optimised simulation engines.

Both optimised engines — the fixed-population :class:`repro.sim.engine.Simulation`
and the variable-population
:class:`repro.sim.population_fast.FastPopulationSimulation` — execute the same
per-peer decision/transfer round with the same micro-optimisations.  This
module holds the pieces they share, so the two hot paths cannot silently
diverge:

* :func:`inline_shuffle` / :func:`inline_sample` — local replicas of
  CPython's ``Random.shuffle`` / ``Random.sample`` driven by a bound
  ``getrandbits``.  They make **exactly** the same draws as the stdlib
  (same ``getrandbits`` calls, same rejection loops), which is what keeps
  the optimised engines bit-identical to the reference implementations
  while skipping the stdlib's per-call overhead;
* :func:`sample_skip` — :func:`inline_sample` over an id list minus one
  position, mapping drawn indices past the skipped slot instead of
  materialising the deciding peer's "all other peers" list;
* :func:`round_bucket` — fetch-or-create of a peer's history bucket for the
  current round, trimming exactly as ``InteractionHistory.record`` would;
* :func:`apply_transfer_groups` — the per-peer transfer core: applies one
  decision's ``(targets, amount)`` groups into the targets' history buckets
  and the flat transfer-accounting arrays, with optional split
  lifetime/measured accounting;
* :func:`behavior_info` — the per-peer behaviour constants unpacked into a
  tuple the round loop destructures instead of touching attribute lookups.

Everything here is deliberately allocation-light and branch-predictable;
any change must keep the golden-equivalence and differential suites green
(they compare full serialised result payloads, so a single diverging draw
or float operation fails them).
"""

from __future__ import annotations

from math import ceil as _ceil, log as _log
from typing import Dict, List, Sequence, Tuple

from repro.sim.behavior import PeerBehavior

__all__ = [
    "SAMPLE_POOL_COPY_MAX",
    "sample_setsize",
    "inline_shuffle",
    "inline_sample",
    "sample_skip",
    "round_bucket",
    "apply_transfer_groups",
    "behavior_info",
]

#: Largest population size for which CPython's ``Random.sample`` uses its
#: pool-copy algorithm for small draws (``k <= 5``): the stdlib computes
#: ``setsize = 21`` (growing only for ``k > 5``) and copies the population
#: whenever ``n <= setsize``.  Below this bound a one- or two-element sample
#: can be replicated with one or two ``randbelow`` draws and **no pool
#: copy** — the "fast discovery" shortcut both optimised engines take.
#: Above it (or for larger ``k``) the draw pattern changes, so the shortcut
#: must not be used; :func:`inline_sample` handles the general case.
SAMPLE_POOL_COPY_MAX = 21


def sample_setsize(k: int) -> int:
    """CPython's ``Random.sample`` pool-copy threshold for a draw of ``k``.

    ``sample`` copies the population whenever ``n <= setsize`` and uses the
    selection-set algorithm otherwise; every replica of its draws must
    branch on exactly this value.
    """
    setsize = SAMPLE_POOL_COPY_MAX
    if k > 5:
        setsize += 4 ** _ceil(_log(k * 3, 4))
    return setsize


def inline_shuffle(getrandbits, x: list) -> None:
    """``random.Random.shuffle`` via its bound ``getrandbits``."""
    for i in range(len(x) - 1, 0, -1):
        m = i + 1
        bits = m.bit_length()
        j = getrandbits(bits)
        while j >= m:
            j = getrandbits(bits)
        x[i], x[j] = x[j], x[i]


def inline_sample(getrandbits, population: Sequence[int], k: int) -> List[int]:
    """``random.Random.sample`` via its bound ``getrandbits`` (k >= 1)."""
    n = len(population)
    if n <= sample_setsize(k):
        # Pool-copy algorithm; the k == 1 / k == 2 fast paths avoid copying
        # the population while making the identical draws.
        bits = n.bit_length()
        j = getrandbits(bits)
        while j >= n:
            j = getrandbits(bits)
        if k == 1:
            return [population[j]]
        if k == 2:
            m = n - 1
            bits = m.bit_length()
            j2 = getrandbits(bits)
            while j2 >= m:
                j2 = getrandbits(bits)
            return [
                population[j],
                population[j2] if j2 != j else population[m],
            ]
        pool = list(population)
        result = [pool[j]]
        pool[j] = pool[n - 1]
        for i in range(1, k):
            m = n - i
            bits = m.bit_length()
            j = getrandbits(bits)
            while j >= m:
                j = getrandbits(bits)
            result.append(pool[j])
            pool[j] = pool[m - 1]
        return result
    # Selection-set algorithm (large population, small k).
    bits = n.bit_length()
    result = []
    selected = set()
    add = selected.add
    for _ in range(k):
        j = getrandbits(bits)
        while j >= n:
            j = getrandbits(bits)
        while j in selected:
            j = getrandbits(bits)
            while j >= n:
                j = getrandbits(bits)
        add(j)
        result.append(population[j])
    return result


def sample_skip(
    getrandbits, ids: List[int], idx: int, n_others: int, k: int
) -> List[int]:
    """``inline_sample`` over ``ids`` minus position ``idx``.

    Replicates the draws of sampling ``k`` ids from the deciding peer's
    "others" list (the id list with its own slot removed) without
    materialising that list: the selection-set branch maps drawn indices
    positionally past the skipped slot, and only the small pool-copy branch
    (population below CPython's set-size threshold) builds the list.
    """
    if n_others <= sample_setsize(k):
        others = ids[:idx] + ids[idx + 1 :]
        return inline_sample(getrandbits, others, k)
    # Selection-set algorithm (large population, small k) with positional
    # index mapping instead of a materialised population.
    bits = n_others.bit_length()
    result = []
    selected = set()
    add = selected.add
    for _ in range(k):
        j = getrandbits(bits)
        while j >= n_others:
            j = getrandbits(bits)
        while j in selected:
            j = getrandbits(bits)
            while j >= n_others:
                j = getrandbits(bits)
        add(j)
        result.append(ids[j] if j < idx else ids[j + 1])
    return result


def round_bucket(
    round_buckets,
    rounds_by_pid: list,
    target: int,
    round_index: int,
    history_cap: int,
) -> Dict[int, float]:
    """Fetch-or-create ``target``'s history bucket for ``round_index``.

    Creates and trims exactly as ``InteractionHistory.record`` would, and
    caches the bucket in ``round_buckets`` (a list preset with ``None``
    indexed by peer id) so subsequent senders skip this path.  Called at
    most once per (target, round).
    """
    target_rounds = rounds_by_pid[target]
    bucket = target_rounds.get(round_index)
    if bucket is None:
        bucket = {}
        target_rounds[round_index] = bucket
        while len(target_rounds) > history_cap:
            target_rounds.popitem(last=False)
    round_buckets[target] = bucket
    return bucket


def apply_transfer_groups(
    groups: List[Tuple[Sequence[int], float]],
    pid: int,
    round_buckets,
    rounds_by_pid: list,
    round_index: int,
    history_cap: int,
    measured_down: List[float],
    measured_up: List[float],
    lifetime_down: List[float],
    lifetime_up: List[float],
    measuring: bool,
    split_accounting: bool,
) -> None:
    """Apply one peer's decision — its ``(targets, amount)`` groups — in place.

    Writes each amount into the target's history bucket for this round (a
    plain assignment: within one round each (sender, target) pair occurs at
    most once) and accumulates positive amounts into the flat accounting
    arrays.  With ``split_accounting`` the lifetime arrays are distinct from
    the measured (post-warmup) arrays and both are maintained; otherwise
    they alias and one update suffices.  The group order — strangers,
    partners, refusals — is the reference engines' dict insertion order, so
    float accumulation order is preserved exactly.
    """
    for targets, amount in groups:
        if amount > 0.0:
            for t in targets:
                bucket = round_buckets[t]
                if bucket is None:
                    bucket = round_bucket(
                        round_buckets, rounds_by_pid, t, round_index, history_cap
                    )
                bucket[pid] = amount
                if split_accounting:
                    lifetime_down[t] += amount
                    lifetime_up[pid] += amount
                    if measuring:
                        measured_down[t] += amount
                        measured_up[pid] += amount
                else:
                    measured_down[t] += amount
                    measured_up[pid] += amount
        else:
            for t in targets:
                bucket = round_buckets[t]
                if bucket is None:
                    bucket = round_bucket(
                        round_buckets, rounds_by_pid, t, round_index, history_cap
                    )
                bucket[pid] = 0.0


def behavior_info(behavior: PeerBehavior) -> tuple:
    """The behaviour constants the round loop destructures per peer.

    Returns ``(candidate_window, partner_count, ranking, allocation,
    stranger_policy, stranger_count, stranger_period)``.
    """
    return (
        behavior.candidate_window,
        behavior.partner_count,
        behavior.ranking,
        behavior.allocation,
        behavior.stranger_policy,
        behavior.stranger_count,
        behavior.stranger_period,
    )
