"""The reference variable-population engine (true arrivals/departures).

This module is the **reference implementation** of variable-population
semantics: it executes the round loop through the live policy modules with
no micro-optimisation, which makes it the spec the optimised hot path
(:class:`repro.sim.population_fast.FastPopulationSimulation`) is proven
bit-identical against by the differential suite.  Production runs dispatch
to the fast engine; keep this one straightforward and readable.

:class:`PopulationSimulation` executes the same two-phase round loop as the
fixed-population engine, but over a **mutable active set**: arrivals create
genuinely new identities mid-run (fresh peer ids, empty history, default
aspiration) and departures in ``"shrink"`` mode remove identities for good —
survivors forget them, and their final accounting is preserved in the run's
records.  This replaces the fixed-slot identity-swap churn model wherever a
scenario needs a population whose *size* changes: growing swarms, flash
crowds of real newcomers, and Sybil-style whitewashing where departing peers
re-enter under fresh identities to shed their reputation.

Round structure:

1. **Population step** — departures are drawn per active peer (replacement
   or true-shrink semantics per the
   :class:`~repro.sim.dynamics.DepartureProcess`), whitewash rejoins are
   drawn per departure, and exogenous arrivals (Poisson stream or scheduled
   flash batch) join, capped by ``max_active``.  New identities participate
   from this round on.
2. **Decision phase** — every active peer decides exactly as in the
   reference engine, via the live policy modules
   (:mod:`repro.sim.policies`); candidate and discovery structures are
   rebuilt from the current active set each round.
3. **Transfer phase** — buffered allocations are applied simultaneously,
   then loyalty, aspiration and pending requests are refreshed.

Determinism and equivalence
---------------------------
The engine consumes its single :class:`random.Random` in a pinned order
(departure draws in active order, whitewash draws in departure order, the
arrival-count draw, then one capacity draw per admitted arrival, then the
decision draws), so runs are bit-reproducible per seed for every arrival
process.  In the **degenerate configuration** — no arrivals, ``"replace"``
departures — the population step collapses to exactly
:func:`repro.sim.churn.apply_churn` and the engine makes draw-for-draw the
same random decisions as the fixed-population engine; the differential
suite (``tests/sim/test_population_differential.py``) proves the results
are bit-identical to :class:`repro.sim.engine.Simulation` and therefore to
the golden :class:`repro.sim.reference.ReferenceSimulation`.

Unlike fixed-population results, the records of a variable run include
**every identity that ever existed** (departed identities keep their final
accounting, so transfer totals balance across population change), each
labelled with its join-time cohort and the measured rounds it was present —
the inputs :func:`repro.sim.metrics.compute_cohort_metrics` normalises into
per-peer-round PRA measures comparable across varying population sizes.
"""

from __future__ import annotations

import random
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_churn, apply_true_departures, sample_poisson
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult
from repro.sim.metrics import PeerRecord
from repro.sim.peer import PeerState
from repro.sim.policies.allocation import allocate_upload
from repro.sim.policies.candidate import candidate_list
from repro.sim.policies.ranking import rank_candidates
from repro.sim.policies.stranger import stranger_decision

__all__ = ["PopulationSimulation"]


class PopulationSimulation:
    """A cycle-based simulation over a dynamic peer population.

    Parameters mirror :class:`repro.sim.engine.Simulation`; ``config`` must
    carry a :class:`~repro.sim.dynamics.PopulationDynamics` bundle.
    ``config.n_peers`` is the *initial* population; ``behaviors`` and
    ``groups`` follow the same one-or-n broadcast convention and describe
    that initial population.  Arrivals without an explicit
    behaviour/group override cycle through the initial per-peer pattern, so
    a heterogeneous mix is preserved as the swarm grows.
    """

    def __init__(
        self,
        config: SimulationConfig,
        behaviors: Sequence[PeerBehavior],
        groups: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
        profile: bool = False,
    ):
        population = config.population
        if population is None:
            raise ValueError(
                "PopulationSimulation needs a config with population dynamics; "
                "use repro.sim.engine.Simulation for fixed populations"
            )
        self.config = config
        self._population = population
        self._rng = random.Random(seed)

        behaviors = list(behaviors)
        if len(behaviors) == 1:
            behaviors = behaviors * config.n_peers
        if len(behaviors) != config.n_peers:
            raise ValueError(
                f"expected 1 or {config.n_peers} behaviors, got {len(behaviors)}"
            )

        if groups is None:
            group_labels = ["default"] * config.n_peers
        else:
            group_labels = list(groups)
            if len(group_labels) == 1:
                group_labels = group_labels * config.n_peers
            if len(group_labels) != config.n_peers:
                raise ValueError(
                    f"expected 1 or {config.n_peers} group labels, got {len(group_labels)}"
                )

        self._initial_behaviors = behaviors
        self._initial_groups = group_labels
        self._distribution = config.distribution()

        # The initial population, sampled in the same order (and therefore
        # with the same draws) as the fixed-population engines.
        self._active: List[PeerState] = []
        for peer_id in range(config.n_peers):
            self._active.append(
                PeerState.spawn(
                    peer_id=peer_id,
                    upload_capacity=self._distribution.sample(self._rng),
                    behavior=behaviors[peer_id],
                    group=group_labels[peer_id],
                    joined_round=0,
                    cohort="initial",
                    history_rounds=config.history_rounds,
                )
            )
        #: Every identity ever created, in creation (= id) order.  Active
        #: and departed peers alike; records are emitted from this list.
        self._all_peers: List[PeerState] = list(self._active)
        self._next_id = config.n_peers

        self._measured_down: Dict[int, float] = {
            p.peer_id: 0.0 for p in self._active
        }
        self._measured_up: Dict[int, float] = {p.peer_id: 0.0 for p in self._active}
        #: Measured rounds each identity was active (variable runs only).
        self._presence: Dict[int, int] = {p.peer_id: 0 for p in self._active}

        self._churn_events = 0
        self._explicit_refusals = 0
        self._arrivals = 0
        self._departures = 0
        self._active_counts: List[int] = []

        # The degenerate bundle — no arrivals, replacement departures — is
        # the legacy churn model; the run then reports a legacy-shaped
        # result, bit-identical to the fixed-population engine's.
        self._legacy = (
            population.arrival.is_none() and population.departure.mode == "replace"
        )

        self._profile = profile
        #: Wall-clock seconds per round phase, populated when ``profile``.
        self.phase_seconds: Dict[str, float] = {
            "population": 0.0,
            "decision": 0.0,
            "transfer": 0.0,
        }

    # ------------------------------------------------------------------ #
    # population step
    # ------------------------------------------------------------------ #
    def _spawn(
        self,
        capacity: float,
        behavior: PeerBehavior,
        group: str,
        round_index: int,
        cohort: str,
    ) -> PeerState:
        """Create a genuinely new identity and admit it to the active set."""
        peer = PeerState.spawn(
            peer_id=self._next_id,
            upload_capacity=capacity,
            behavior=behavior,
            group=group,
            joined_round=round_index,
            cohort=cohort,
            history_rounds=self.config.history_rounds,
        )
        self._next_id += 1
        self._active.append(peer)
        self._all_peers.append(peer)
        self._measured_down[peer.peer_id] = 0.0
        self._measured_up[peer.peer_id] = 0.0
        self._presence[peer.peer_id] = 0
        self._arrivals += 1
        self._churn_events += 1
        return peer

    def _spawn_arrival(self, round_index: int) -> PeerState:
        """Admit one exogenous newcomer (Poisson stream or flash batch)."""
        arrival = self._population.arrival
        new_id = self._next_id
        n_initial = self.config.n_peers
        behavior = (
            arrival.behavior
            if arrival.behavior is not None
            else self._initial_behaviors[new_id % n_initial]
        )
        group = (
            arrival.group
            if arrival.group is not None
            else self._initial_groups[new_id % n_initial]
        )
        return self._spawn(
            capacity=self._distribution.sample(self._rng),
            behavior=behavior,
            group=group,
            round_index=round_index,
            cohort="arrival",
        )

    def _on_departures(self, departed_ids: List[int]) -> None:
        """Hook: true departures just removed ``departed_ids`` from the
        active set (and any rejoins/arrivals of the round have not spawned
        yet).  The reference engine needs no bookkeeping; the optimised
        engine invalidates its incremental membership structures here."""

    def _admissible(self, requested: int) -> int:
        """Clamp an arrival count to the ``max_active`` capacity cap."""
        cap = self._population.max_active
        if cap <= 0:
            return requested
        return max(0, min(requested, cap - len(self._active)))

    def _population_step(self, round_index: int) -> Tuple[List[int], List[int]]:
        """Run departures/rejoins/arrivals; returns ``(churned, departed)`` ids.

        ``churned`` are identities reset in place by replacement-mode
        departures; ``departed`` are identities removed for good by true
        departures.  The reference round loop ignores the return value; the
        optimised engine uses it to patch its incremental structures.
        """
        population = self._population
        departure = population.departure
        arrival = population.arrival
        rng = self._rng
        churned_ids: List[int] = []
        departed_ids: List[int] = []

        if departure.rate > 0.0 or departure.group_rates:
            if departure.mode == "replace":
                churned_ids = apply_churn(
                    self._active,
                    departure.rate,
                    round_index,
                    rng,
                    self._distribution,
                )
                self._churn_events += len(churned_ids)
            else:
                departed = apply_true_departures(
                    self._active,
                    departure.rate,
                    round_index,
                    rng,
                    min_active=departure.min_active,
                    extra_rates=departure.extra_rates(),
                )
                if departed:
                    departed_ids = [peer.peer_id for peer in departed]
                    self._departures += len(departed)
                    self._churn_events += len(departed)
                    # Fires before any whitewash rejoin spawns, so
                    # subclasses see the membership change first.
                    self._on_departures(departed_ids)
                    if arrival.kind == "whitewash":
                        # A whitewashing node re-enters immediately: same
                        # capacity, behaviour and group, but a fresh
                        # identity nobody has history with.  With targeted
                        # whitewashing only the named groups rejoin (and
                        # only they consume a rejoin draw), so honest
                        # departures leave for good.
                        for peer in departed:
                            if not arrival.whitewashes(peer.group):
                                continue
                            if rng.random() < arrival.rate:
                                self._spawn(
                                    capacity=peer.upload_capacity,
                                    behavior=peer.behavior,
                                    group=peer.group,
                                    round_index=round_index,
                                    cohort="whitewash",
                                )

        if arrival.kind == "poisson":
            if round_index >= arrival.start:
                # The count is always drawn (even when the cap admits
                # nobody) so the random stream does not depend on the
                # current population state.
                count = self._admissible(sample_poisson(rng, arrival.rate))
                for _ in range(count):
                    self._spawn_arrival(round_index)
        elif arrival.kind == "flash":
            count = self._admissible(arrival.flash_count_for_round(round_index))
            for _ in range(count):
                self._spawn_arrival(round_index)
        return churned_ids, departed_ids

    # ------------------------------------------------------------------ #
    # round processing (reference-engine semantics over the active set)
    # ------------------------------------------------------------------ #
    def _decide_peer(
        self, peer: PeerState, round_index: int, active_ids: List[int]
    ) -> Tuple[Dict[int, float], List[int]]:
        config = self.config
        behavior = peer.behavior

        candidates = candidate_list(peer, round_index)
        ranked = rank_candidates(peer, candidates, round_index, self._rng)
        partners = ranked[: behavior.partner_count]
        partner_set = set(partners)

        pool = set(peer.pending_requests)
        if config.discovery_per_round > 0 and len(active_ids) > 1:
            others = [pid for pid in active_ids if pid != peer.peer_id]
            sample_size = min(config.discovery_per_round, len(others))
            pool.update(self._rng.sample(others, sample_size))
        pool.discard(peer.peer_id)
        pool -= partner_set
        pool -= candidates
        stranger_pool = sorted(pool)

        decision = stranger_decision(
            peer, stranger_pool, len(partners), round_index, self._rng
        )

        allocation = allocate_upload(
            peer,
            partners,
            decision.cooperate,
            round_index,
            stranger_bandwidth_cap=config.stranger_bandwidth_cap,
        )
        for refused in decision.refuse:
            allocation.setdefault(refused, 0.0)
            self._explicit_refusals += 1

        request_targets: List[int] = []
        if config.requests_per_round > 0 and len(active_ids) > 1:
            eligible = [
                pid
                for pid in active_ids
                if pid != peer.peer_id and pid not in partner_set
            ]
            if eligible:
                sample_size = min(config.requests_per_round, len(eligible))
                request_targets = self._rng.sample(eligible, sample_size)

        return allocation, request_targets

    def _run_round(self, round_index: int) -> None:
        config = self.config
        profile = self._profile
        if profile:
            tick = perf_counter()
        self._population_step(round_index)
        if profile:
            now = perf_counter()
            self.phase_seconds["population"] += now - tick
            tick = now

        active = self._active
        active_ids = [peer.peer_id for peer in active]
        self._active_counts.append(len(active))

        measuring = round_index >= config.warmup_rounds
        if measuring and not self._legacy:
            presence = self._presence
            for pid in active_ids:
                presence[pid] += 1

        peers_by_id = {peer.peer_id: peer for peer in active}
        decisions: List[Tuple[PeerState, Dict[int, float]]] = []
        incoming_requests: Dict[int, Set[int]] = {pid: set() for pid in active_ids}
        for peer in active:
            allocation, request_targets = self._decide_peer(
                peer, round_index, active_ids
            )
            decisions.append((peer, allocation))
            for target in request_targets:
                incoming_requests[target].add(peer.peer_id)
        if profile:
            now = perf_counter()
            self.phase_seconds["decision"] += now - tick
            tick = now

        measured_down = self._measured_down
        measured_up = self._measured_up
        for peer, allocation in decisions:
            for target_id, amount in allocation.items():
                target = peers_by_id[target_id]
                target.history.record(round_index, peer.peer_id, amount)
                if amount > 0.0:
                    target.total_downloaded += amount
                    peer.total_uploaded += amount
                    if measuring:
                        measured_down[target_id] += amount
                        measured_up[peer.peer_id] += amount

        for peer in active:
            peer.update_loyalty(round_index)
            received = peer.history.total_received(round_index)
            peer.update_aspiration(received, smoothing=config.aspiration_smoothing)
            peer.pending_requests = incoming_requests[peer.peer_id]
        if profile:
            self.phase_seconds["transfer"] += perf_counter() - tick

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all rounds and return the :class:`SimulationResult`."""
        for round_index in range(self.config.rounds):
            self._run_round(round_index)

        legacy = self._legacy
        records: List[PeerRecord] = []
        for peer in self._all_peers:
            pid = peer.peer_id
            if legacy:
                # Legacy-shaped records: bit-identical to the fixed engine.
                record = PeerRecord(
                    peer_id=pid,
                    group=peer.group,
                    upload_capacity=peer.upload_capacity,
                    behavior_label=peer.behavior.label(),
                    downloaded=self._measured_down[pid],
                    uploaded=self._measured_up[pid],
                )
            else:
                record = PeerRecord(
                    peer_id=pid,
                    group=peer.group,
                    upload_capacity=peer.upload_capacity,
                    behavior_label=peer.behavior.label(),
                    downloaded=self._measured_down[pid],
                    uploaded=self._measured_up[pid],
                    cohort=peer.cohort,
                    joined_round=peer.joined_round,
                    departed_round=peer.departed_round,
                    rounds_present=self._presence[pid],
                )
            records.append(record)
        return SimulationResult(
            config=self.config,
            records=records,
            rounds_executed=self.config.rounds,
            churn_events=self._churn_events,
            total_explicit_refusals=self._explicit_refusals,
            active_counts=None if legacy else tuple(self._active_counts),
            total_arrivals=self._arrivals,
            total_departures=self._departures,
        )
