"""The cycle-based simulation engine (Section 4.3.1).

One :class:`Simulation` executes a population of peers, each running a
:class:`~repro.sim.behavior.PeerBehavior`, for a configured number of rounds.
Every round proceeds in two phases:

1. **Decision phase** — each peer, using only information available at the
   start of the round, (a) builds its candidate list from recent
   interactions, (b) ranks the candidates and selects up to ``k`` partners,
   (c) applies its stranger policy to recent contacts it has no history
   with, (d) divides its upload capacity over the chosen targets according to
   its allocation policy, and (e) issues discovery/service requests to random
   peers.

2. **Transfer phase** — all allocations are applied simultaneously: the
   receiving peers record the interactions (including explicit zero-amount
   refusals), transfer accounting is updated, loyalty counters and adaptive
   aspiration levels are refreshed, and the requests issued this round become
   the targets' pending contacts for the next round.

The two-phase structure removes any dependence on peer iteration order within
a round, which keeps runs reproducible and unbiased.

Churn, when enabled, is applied at the start of each round (see
:mod:`repro.sim.churn`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_churn
from repro.sim.config import SimulationConfig
from repro.sim.history import InteractionHistory
from repro.sim.metrics import (
    GroupMetrics,
    PeerRecord,
    compute_group_metrics,
    population_throughput,
)
from repro.sim.peer import PeerState
from repro.sim.policies.allocation import allocate_upload
from repro.sim.policies.candidate import candidate_list
from repro.sim.policies.ranking import rank_candidates
from repro.sim.policies.stranger import stranger_decision

__all__ = ["Simulation", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config: SimulationConfig
    records: List[PeerRecord]
    rounds_executed: int
    churn_events: int = 0
    total_explicit_refusals: int = 0

    @property
    def measured_rounds(self) -> int:
        return self.config.measured_rounds

    @property
    def throughput(self) -> float:
        """Population throughput per measured round (the Performance metric)."""
        return population_throughput(self.records, self.measured_rounds)

    @property
    def mean_download_per_peer(self) -> float:
        """Average cumulative download per peer over the measured rounds."""
        if not self.records:
            return 0.0
        return sum(r.downloaded for r in self.records) / len(self.records)

    def group_metrics(self) -> Dict[str, GroupMetrics]:
        """Aggregate metrics per protocol group."""
        return compute_group_metrics(self.records, self.measured_rounds)

    def group_mean_download(self, group: str) -> float:
        """Average per-peer download of one group (KeyError if absent)."""
        return self.group_metrics()[group].mean_downloaded

    def groups(self) -> List[str]:
        """The distinct group labels present, sorted."""
        return sorted({r.group for r in self.records})

    def utilization(self) -> float:
        """Fraction of total upload capacity actually used across the run."""
        capacity = sum(r.upload_capacity for r in self.records) * self.measured_rounds
        if capacity <= 0:
            return 0.0
        return sum(r.uploaded for r in self.records) / capacity


class Simulation:
    """A single cycle-based simulation run.

    Parameters
    ----------
    config:
        Run parameters (population size, rounds, churn, ...).
    behaviors:
        Either one behaviour per peer (``len == n_peers``) or a single
        behaviour broadcast to the entire population.
    groups:
        Optional group label per peer (same length rules).  PRA encounters
        label the two sub-populations so their utilities can be compared;
        homogeneous runs can omit this.
    seed:
        Seed of the run's private random generator.
    """

    def __init__(
        self,
        config: SimulationConfig,
        behaviors: Sequence[PeerBehavior],
        groups: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ):
        self.config = config
        self._rng = random.Random(seed)

        behaviors = list(behaviors)
        if len(behaviors) == 1:
            behaviors = behaviors * config.n_peers
        if len(behaviors) != config.n_peers:
            raise ValueError(
                f"expected 1 or {config.n_peers} behaviors, got {len(behaviors)}"
            )

        if groups is None:
            group_labels = ["default"] * config.n_peers
        else:
            group_labels = list(groups)
            if len(group_labels) == 1:
                group_labels = group_labels * config.n_peers
            if len(group_labels) != config.n_peers:
                raise ValueError(
                    f"expected 1 or {config.n_peers} group labels, got {len(group_labels)}"
                )

        distribution = config.distribution()
        self.peers: List[PeerState] = []
        for peer_id in range(config.n_peers):
            capacity = distribution.sample(self._rng)
            self.peers.append(
                PeerState(
                    peer_id=peer_id,
                    upload_capacity=capacity,
                    behavior=behaviors[peer_id],
                    group=group_labels[peer_id],
                    history=InteractionHistory(max_rounds=config.history_rounds),
                )
            )
        self._peer_ids = [p.peer_id for p in self.peers]
        self._churn_events = 0
        self._explicit_refusals = 0
        # Measured (post-warmup) transfer accounting, kept separately from the
        # peers' lifetime totals so warmup rounds do not pollute the metrics.
        self._measured_down: Dict[int, float] = {pid: 0.0 for pid in self._peer_ids}
        self._measured_up: Dict[int, float] = {pid: 0.0 for pid in self._peer_ids}

    # ------------------------------------------------------------------ #
    # round processing
    # ------------------------------------------------------------------ #
    def _decide_peer(
        self, peer: PeerState, round_index: int
    ) -> Tuple[Dict[int, float], List[int]]:
        """Phase-1 decision for one peer: returns (allocation, request targets)."""
        config = self.config
        behavior = peer.behavior

        candidates = candidate_list(peer, round_index)
        ranked = rank_candidates(peer, candidates, round_index, self._rng)
        partners = ranked[: behavior.partner_count]
        partner_set = set(partners)

        # Build the stranger pool: recent contacts (incoming requests) plus a
        # few freshly discovered peers, excluding self, current partners and
        # anyone already in the candidate list (they are not strangers).
        pool = set(peer.pending_requests)
        if config.discovery_per_round > 0 and len(self._peer_ids) > 1:
            others = [pid for pid in self._peer_ids if pid != peer.peer_id]
            sample_size = min(config.discovery_per_round, len(others))
            pool.update(self._rng.sample(others, sample_size))
        pool.discard(peer.peer_id)
        pool -= partner_set
        pool -= candidates
        stranger_pool = sorted(pool)

        decision = stranger_decision(
            peer, stranger_pool, len(partners), round_index, self._rng
        )

        allocation = allocate_upload(
            peer,
            partners,
            decision.cooperate,
            round_index,
            stranger_bandwidth_cap=config.stranger_bandwidth_cap,
        )
        for refused in decision.refuse:
            allocation.setdefault(refused, 0.0)
            self._explicit_refusals += 1

        # Discovery / service requests for the next round.
        request_targets: List[int] = []
        if config.requests_per_round > 0 and len(self._peer_ids) > 1:
            eligible = [
                pid
                for pid in self._peer_ids
                if pid != peer.peer_id and pid not in partner_set
            ]
            if eligible:
                sample_size = min(config.requests_per_round, len(eligible))
                request_targets = self._rng.sample(eligible, sample_size)

        return allocation, request_targets

    def _run_round(self, round_index: int) -> None:
        config = self.config
        peers_by_id = {p.peer_id: p for p in self.peers}

        if config.churn_rate > 0.0:
            churned = apply_churn(
                self.peers,
                config.churn_rate,
                round_index,
                self._rng,
                config.distribution(),
            )
            self._churn_events += len(churned)

        # Phase 1: decisions.
        decisions: List[Tuple[PeerState, Dict[int, float]]] = []
        incoming_requests: Dict[int, set] = {pid: set() for pid in self._peer_ids}
        for peer in self.peers:
            allocation, request_targets = self._decide_peer(peer, round_index)
            decisions.append((peer, allocation))
            for target in request_targets:
                incoming_requests[target].add(peer.peer_id)

        # Phase 2: transfers and bookkeeping.
        measuring = round_index >= config.warmup_rounds
        for peer, allocation in decisions:
            for target_id, amount in allocation.items():
                target = peers_by_id[target_id]
                target.history.record(round_index, peer.peer_id, amount)
                if amount > 0.0:
                    target.total_downloaded += amount
                    peer.total_uploaded += amount
                    if measuring:
                        self._measured_down[target_id] += amount
                        self._measured_up[peer.peer_id] += amount

        for peer in self.peers:
            peer.update_loyalty(round_index)
            received = peer.history.total_received(round_index)
            peer.update_aspiration(received, smoothing=config.aspiration_smoothing)
            peer.pending_requests = incoming_requests[peer.peer_id]

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all rounds and return the :class:`SimulationResult`."""
        for round_index in range(self.config.rounds):
            self._run_round(round_index)

        records = [
            PeerRecord(
                peer_id=peer.peer_id,
                group=peer.group,
                upload_capacity=peer.upload_capacity,
                behavior_label=peer.behavior.label(),
                downloaded=self._measured_down[peer.peer_id],
                uploaded=self._measured_up[peer.peer_id],
            )
            for peer in self.peers
        ]
        return SimulationResult(
            config=self.config,
            records=records,
            rounds_executed=self.config.rounds,
            churn_events=self._churn_events,
            total_explicit_refusals=self._explicit_refusals,
        )
