"""Upload-capacity (bandwidth) distributions for peer populations.

The paper initialises its simulated peers "using the bandwidth distribution
provided by Piatek et al." — an empirical distribution of BitTorrent peers'
upload capacities measured in NSDI'07, dominated by slow residential uplinks
with a long tail of very fast peers.  The measured trace itself is not
available offline, so :func:`piatek_distribution` provides a synthetic
piecewise-empirical stand-in with the same qualitative shape (documented in
DESIGN.md).  The class hierarchy also provides constant, uniform, two-class
and fully custom empirical distributions used by tests, examples and the
analytical-model comparisons.

All distributions are sampled with an explicit ``random.Random`` so peer
populations are reproducible.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "BandwidthDistribution",
    "ConstantBandwidth",
    "UniformBandwidth",
    "TwoClassBandwidth",
    "MultiClassBandwidth",
    "EmpiricalBandwidth",
    "piatek_distribution",
]


class BandwidthDistribution(ABC):
    """Base class for upload-capacity distributions (values in KBps)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one upload capacity."""

    def sample_population(self, count: int, rng: random.Random) -> List[float]:
        """Draw ``count`` upload capacities."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]

    @abstractmethod
    def mean(self) -> float:
        """Expected upload capacity."""


class ConstantBandwidth(BandwidthDistribution):
    """Every peer has the same upload capacity."""

    def __init__(self, capacity: float = 100.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)

    def sample(self, rng: random.Random) -> float:
        return self.capacity

    def mean(self) -> float:
        return self.capacity

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConstantBandwidth({self.capacity:g})"


class UniformBandwidth(BandwidthDistribution):
    """Upload capacities drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 20.0, high: float = 200.0):
        if not 0 < low <= high:
            raise ValueError("require 0 < low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"UniformBandwidth({self.low:g}, {self.high:g})"


class TwoClassBandwidth(BandwidthDistribution):
    """A fast/slow two-class population, as in the Section 2 analysis.

    Parameters
    ----------
    slow_capacity, fast_capacity:
        Upload capacity of slow and fast peers (``fast > slow``).
    fast_fraction:
        Probability that a sampled peer is fast.
    """

    def __init__(
        self,
        slow_capacity: float = 25.0,
        fast_capacity: float = 100.0,
        fast_fraction: float = 0.5,
    ):
        if not fast_capacity > slow_capacity > 0:
            raise ValueError("require fast_capacity > slow_capacity > 0")
        if not 0.0 <= fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in [0, 1]")
        self.slow_capacity = float(slow_capacity)
        self.fast_capacity = float(fast_capacity)
        self.fast_fraction = float(fast_fraction)

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.fast_fraction:
            return self.fast_capacity
        return self.slow_capacity

    def mean(self) -> float:
        return (
            self.fast_fraction * self.fast_capacity
            + (1.0 - self.fast_fraction) * self.slow_capacity
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TwoClassBandwidth(slow={self.slow_capacity:g}, "
            f"fast={self.fast_capacity:g}, fast_fraction={self.fast_fraction:g})"
        )


class MultiClassBandwidth(BandwidthDistribution):
    """A discrete population of named capacity classes.

    The scenario subsystem's heterogeneous populations (e.g. a few fast
    "seed"-class peers among many slow leechers) use this distribution: each
    class has a fraction and an exact capacity, and sampling returns one of
    the class capacities — no interpolation, unlike
    :class:`EmpiricalBandwidth`.  Churn replacements drawn from it therefore
    stay on the class grid the scenario defined.
    """

    def __init__(self, classes: Sequence[Tuple[float, float]]):
        """``classes`` is a sequence of ``(fraction, capacity_kbps)`` pairs."""
        if not classes:
            raise ValueError("at least one class is required")
        fractions = [float(f) for f, _ in classes]
        capacities = [float(c) for _, c in classes]
        if any(f <= 0 for f in fractions):
            raise ValueError("class fractions must be positive")
        if any(c <= 0 for c in capacities):
            raise ValueError("class capacities must be positive")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(f"class fractions must sum to 1, got {sum(fractions)}")
        self._fractions = fractions
        self._capacities = capacities
        self._cumulative: List[float] = []
        running = 0.0
        for f in fractions:
            running += f
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    @property
    def classes(self) -> List[Tuple[float, float]]:
        """The ``(fraction, capacity)`` table."""
        return list(zip(self._fractions, self._capacities))

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        return self._capacities[min(index, len(self._capacities) - 1)]

    def mean(self) -> float:
        return sum(f * c for f, c in zip(self._fractions, self._capacities))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        body = ", ".join(
            f"{f:g}:{c:g}" for f, c in zip(self._fractions, self._capacities)
        )
        return f"MultiClassBandwidth({body})"


class EmpiricalBandwidth(BandwidthDistribution):
    """A piecewise-empirical distribution defined by (probability, capacity) buckets.

    Sampling picks a bucket according to its probability and then draws
    uniformly between the bucket's capacity and the next bucket's capacity
    (the last bucket returns its capacity exactly), giving a continuous
    long-tailed distribution from a small table.
    """

    def __init__(self, buckets: Sequence[Tuple[float, float]]):
        """``buckets`` is a sequence of ``(probability, capacity_kbps)`` pairs."""
        if not buckets:
            raise ValueError("at least one bucket is required")
        probs = [float(p) for p, _ in buckets]
        caps = [float(c) for _, c in buckets]
        if any(p <= 0 for p in probs):
            raise ValueError("bucket probabilities must be positive")
        if any(c <= 0 for c in caps):
            raise ValueError("bucket capacities must be positive")
        if abs(sum(probs) - 1.0) > 1e-6:
            raise ValueError(f"bucket probabilities must sum to 1, got {sum(probs)}")
        if caps != sorted(caps):
            raise ValueError("bucket capacities must be given in increasing order")
        self._probabilities = probs
        self._capacities = caps
        self._cumulative: List[float] = []
        running = 0.0
        for p in probs:
            running += p
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    @property
    def buckets(self) -> List[Tuple[float, float]]:
        """The ``(probability, capacity)`` table."""
        return list(zip(self._probabilities, self._capacities))

    def sample(self, rng: random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self._capacities) - 1)
        low = self._capacities[index]
        if index + 1 < len(self._capacities):
            high = self._capacities[index + 1]
            return rng.uniform(low, high)
        return low

    def mean(self) -> float:
        total = 0.0
        for i, (p, low) in enumerate(zip(self._probabilities, self._capacities)):
            if i + 1 < len(self._capacities):
                total += p * (low + self._capacities[i + 1]) / 2.0
            else:
                total += p * low
        return total

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"EmpiricalBandwidth({len(self._capacities)} buckets)"


def piatek_distribution() -> EmpiricalBandwidth:
    """Synthetic stand-in for the Piatek et al. upload-capacity distribution.

    The measured distribution (NSDI'07, Figure 2 of that paper) is dominated
    by peers with a few tens of KBps upload capacity, has a substantial
    population in the 100-300 KBps range and a thin tail of very fast peers.
    The bucket table below reproduces that qualitative shape; absolute
    percentiles are synthetic (see DESIGN.md, substitutions table).
    """
    return EmpiricalBandwidth(
        [
            (0.15, 10.0),
            (0.25, 30.0),
            (0.25, 60.0),
            (0.15, 100.0),
            (0.10, 200.0),
            (0.06, 400.0),
            (0.03, 1000.0),
            (0.01, 3000.0),
        ]
    )
