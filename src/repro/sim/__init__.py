"""Cycle-based P2P simulation model (Section 4.3.1 of the paper).

This sub-package implements the simulation substrate on which the Design
Space Analysis of Section 4 executes protocol variants:

* time consists of rounds; in each round every peer selects partners from a
  candidate list built from recent interactions, decides how to treat
  strangers, and divides its upload capacity over the chosen targets;
* peers are initialised with upload capacities drawn from a Piatek-style
  bandwidth distribution (:mod:`repro.sim.bandwidth`);
* a peer's behaviour is fully described by a :class:`~repro.sim.behavior.PeerBehavior`
  (stranger policy, candidate list, ranking function, number of partners and
  resource-allocation policy) — exactly the dimensions actualised in
  Section 4.2;
* optional churn replaces peers with fresh ones at a configurable per-round
  rate (used for the §4.4 churn check).

The engine (:mod:`repro.sim.engine`) is deliberately lightweight — plain
dictionaries, no per-message objects — so the PRA tournament can run tens of
thousands of simulations in a benchmark session.

Three engines are selectable.  Each population model ships two replica
engines proven bit-identical: an optimised hot path
(:class:`~repro.sim.engine.Simulation` for fixed populations,
:class:`~repro.sim.population_fast.FastPopulationSimulation` for variable
ones) and a reference implementation (:mod:`repro.sim.reference`,
:class:`~repro.sim.population.PopulationSimulation`).  The third,
:class:`~repro.sim.population_vec.VecSimulation`, executes whole rounds as
numpy batch operations for 10k–100k-peer swarms; it samples the same
stochastic process with different random draws and is gated by the
``tests/statistical/`` equivalence harness rather than bit-identity.
:func:`simulate` dispatches onto the optimised replica engines by default;
``engine="reference"`` / ``engine="vec"``, :func:`set_default_engine` or
``REPRO_SIM_ENGINE`` select the other paths.
"""

from repro.sim.bandwidth import (
    BandwidthDistribution,
    ConstantBandwidth,
    EmpiricalBandwidth,
    TwoClassBandwidth,
    UniformBandwidth,
    piatek_distribution,
)
from repro.sim.behavior import (
    ALLOCATION_POLICIES,
    CANDIDATE_POLICIES,
    RANKING_FUNCTIONS,
    STRANGER_POLICIES,
    PeerBehavior,
)
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.engine import (
    ENGINE_CHOICES,
    Simulation,
    SimulationResult,
    default_engine,
    set_default_engine,
    simulate,
)
from repro.sim.history import InteractionHistory
from repro.sim.metrics import (
    CohortMetrics,
    GroupMetrics,
    compute_cohort_metrics,
    compute_group_metrics,
    population_throughput,
)
from repro.sim.peer import PeerState
from repro.sim.population import PopulationSimulation
from repro.sim.population_fast import FastPopulationSimulation
from repro.sim.population_vec import VecSimulation

__all__ = [
    "BandwidthDistribution",
    "ConstantBandwidth",
    "EmpiricalBandwidth",
    "TwoClassBandwidth",
    "UniformBandwidth",
    "piatek_distribution",
    "PeerBehavior",
    "STRANGER_POLICIES",
    "CANDIDATE_POLICIES",
    "RANKING_FUNCTIONS",
    "ALLOCATION_POLICIES",
    "SimulationConfig",
    "Simulation",
    "SimulationResult",
    "simulate",
    "ENGINE_CHOICES",
    "default_engine",
    "set_default_engine",
    "ArrivalProcess",
    "DepartureProcess",
    "PopulationDynamics",
    "PopulationSimulation",
    "FastPopulationSimulation",
    "VecSimulation",
    "InteractionHistory",
    "PeerState",
    "GroupMetrics",
    "CohortMetrics",
    "compute_group_metrics",
    "compute_cohort_metrics",
    "population_throughput",
]
