"""Engine-level workload dynamics: churn waves and behaviour shifts.

The scenario subsystem (:mod:`repro.scenarios`) describes dynamic and
adversarial workloads declaratively; this module holds the *compiled* form
those descriptions reduce to — plain, hashable value types the simulation
engine executes directly:

* :class:`ChurnWave` — a window of rounds with elevated departures, either
  *independent* (an extra per-peer departure probability layered on top of
  the base ``churn_rate``) or *correlated* (an exact fraction of the swarm
  replaced together each wave round, modelling flash crowds and
  failure bursts);
* :class:`BehaviorShift` — at a given round, a fixed set of peers switches
  to a new :class:`~repro.sim.behavior.PeerBehavior` (free-rider waves,
  colluding groups switching on);
* :class:`ScenarioDynamics` — the bundle attached to a
  :class:`~repro.sim.config.SimulationConfig`, optionally also pinning the
  initial per-peer upload capacities (heterogeneous class populations).

All types are frozen, hashable and JSON round-trippable, so a configured
dynamics bundle participates in the runner's content-addressed result cache
exactly like every other simulation parameter.  A config whose ``dynamics``
is ``None`` executes the unmodified legacy path — bit-identical to the
golden reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.behavior import PeerBehavior

__all__ = ["ChurnWave", "BehaviorShift", "ScenarioDynamics"]


@dataclass(frozen=True)
class ChurnWave:
    """A window of rounds with elevated churn.

    Parameters
    ----------
    start:
        First round of the wave (0-based, inclusive).
    rounds:
        Number of consecutive rounds the wave lasts.
    intensity:
        For an independent wave, the extra per-peer departure probability
        during each wave round; for a correlated wave, the exact fraction of
        the swarm replaced together each wave round.
    correlated:
        Whether departures are drawn as one correlated batch (flash crowd /
        correlated failure) instead of independent per-peer coin flips.
    """

    start: int
    rounds: int = 1
    intensity: float = 0.1
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.correlated:
            if not 0.0 < self.intensity <= 1.0:
                raise ValueError("correlated intensity must be in (0, 1]")
        elif not 0.0 < self.intensity < 1.0:
            raise ValueError("independent intensity must be in (0, 1)")

    def covers(self, round_index: int) -> bool:
        """Whether ``round_index`` falls inside this wave."""
        return self.start <= round_index < self.start + self.rounds

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "start": self.start,
            "rounds": self.rounds,
            "intensity": self.intensity,
            "correlated": self.correlated,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChurnWave":
        """Inverse of :meth:`as_dict`."""
        return cls(
            start=int(data["start"]),
            rounds=int(data["rounds"]),
            intensity=float(data["intensity"]),
            correlated=bool(data["correlated"]),
        )


@dataclass(frozen=True)
class BehaviorShift:
    """A set of peers switching behaviour at a fixed round.

    The shift is applied at the *start* of ``round`` (before churn and
    decisions), so the new behaviour governs that round's decisions.  The
    affected peers keep their identity, history and capacity — only the
    protocol they execute (and optionally their group label) changes.
    """

    round: int
    peer_ids: Tuple[int, ...]
    behavior: PeerBehavior
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if not isinstance(self.peer_ids, tuple):
            object.__setattr__(self, "peer_ids", tuple(self.peer_ids))
        if not self.peer_ids:
            raise ValueError("a behavior shift needs at least one peer id")
        if len(set(self.peer_ids)) != len(self.peer_ids):
            raise ValueError("peer_ids must be distinct")
        if min(self.peer_ids) < 0:
            raise ValueError("peer ids must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "round": self.round,
            "peer_ids": list(self.peer_ids),
            "behavior": self.behavior.as_dict(),
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BehaviorShift":
        """Inverse of :meth:`as_dict`."""
        group = data.get("group")
        return cls(
            round=int(data["round"]),
            peer_ids=tuple(int(p) for p in data["peer_ids"]),
            behavior=PeerBehavior.from_dict(data["behavior"]),
            group=str(group) if group is not None else None,
        )


@dataclass(frozen=True)
class ScenarioDynamics:
    """The compiled dynamics of one scenario, as executed by the engine.

    Parameters
    ----------
    initial_capacities:
        Optional explicit per-peer upload capacities (length ``n_peers``).
        When given, the engine uses them verbatim instead of sampling from
        the bandwidth distribution — heterogeneous class populations get
        exact class shares rather than probabilistic ones.  Churn
        replacements still sample from the configured distribution.
    churn_waves:
        Churn waves layered on top of the base ``churn_rate``.  Waves may
        overlap; independent intensities add, and every correlated wave
        covering a round triggers its own batch replacement.
    behavior_shifts:
        Behaviour switches applied at the start of their round.
    """

    initial_capacities: Optional[Tuple[float, ...]] = None
    churn_waves: Tuple[ChurnWave, ...] = ()
    behavior_shifts: Tuple[BehaviorShift, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_capacities is not None:
            if not isinstance(self.initial_capacities, tuple):
                object.__setattr__(
                    self, "initial_capacities", tuple(self.initial_capacities)
                )
            if any(c <= 0 for c in self.initial_capacities):
                raise ValueError("initial capacities must be positive")
        if not isinstance(self.churn_waves, tuple):
            object.__setattr__(self, "churn_waves", tuple(self.churn_waves))
        if not isinstance(self.behavior_shifts, tuple):
            object.__setattr__(self, "behavior_shifts", tuple(self.behavior_shifts))

    def is_trivial(self) -> bool:
        """Whether this bundle changes nothing over the legacy path."""
        return (
            self.initial_capacities is None
            and not self.churn_waves
            and not self.behavior_shifts
        )

    # ------------------------------------------------------------------ #
    # round lookups (engine helpers)
    # ------------------------------------------------------------------ #
    def extra_rate(self, round_index: int) -> float:
        """Summed independent-wave intensity covering ``round_index``."""
        return sum(
            w.intensity
            for w in self.churn_waves
            if not w.correlated and w.covers(round_index)
        )

    def correlated_fraction(self, round_index: int) -> float:
        """Summed correlated-wave fraction covering ``round_index`` (capped at 1)."""
        fraction = sum(
            w.intensity
            for w in self.churn_waves
            if w.correlated and w.covers(round_index)
        )
        return min(1.0, fraction)

    def shifts_for_round(self, round_index: int) -> List[BehaviorShift]:
        """The behaviour shifts firing at ``round_index`` (declaration order)."""
        return [s for s in self.behavior_shifts if s.round == round_index]

    def max_peer_id(self) -> int:
        """Largest peer id referenced by any shift (-1 when none are)."""
        ids = [pid for shift in self.behavior_shifts for pid in shift.peer_ids]
        return max(ids) if ids else -1

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        return {
            "initial_capacities": (
                list(self.initial_capacities)
                if self.initial_capacities is not None
                else None
            ),
            "churn_waves": [w.as_dict() for w in self.churn_waves],
            "behavior_shifts": [s.as_dict() for s in self.behavior_shifts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioDynamics":
        """Inverse of :meth:`as_dict`."""
        capacities = data.get("initial_capacities")
        return cls(
            initial_capacities=(
                tuple(float(c) for c in capacities) if capacities is not None else None
            ),
            churn_waves=tuple(
                ChurnWave.from_dict(w) for w in data.get("churn_waves", ())
            ),
            behavior_shifts=tuple(
                BehaviorShift.from_dict(s) for s in data.get("behavior_shifts", ())
            ),
        )
