"""Engine-level workload dynamics: churn waves and behaviour shifts.

The scenario subsystem (:mod:`repro.scenarios`) describes dynamic and
adversarial workloads declaratively; this module holds the *compiled* form
those descriptions reduce to — plain, hashable value types the simulation
engine executes directly:

* :class:`ChurnWave` — a window of rounds with elevated departures, either
  *independent* (an extra per-peer departure probability layered on top of
  the base ``churn_rate``) or *correlated* (an exact fraction of the swarm
  replaced together each wave round, modelling flash crowds and
  failure bursts);
* :class:`BehaviorShift` — at a given round, a fixed set of peers switches
  to a new :class:`~repro.sim.behavior.PeerBehavior` (free-rider waves,
  colluding groups switching on);
* :class:`ScenarioDynamics` — the bundle attached to a
  :class:`~repro.sim.config.SimulationConfig`, optionally also pinning the
  initial per-peer upload capacities (heterogeneous class populations).

On top of the fixed-slot dynamics this module also defines the
*variable-population* primitives executed by
:class:`~repro.sim.population.PopulationSimulation`:

* :class:`ArrivalProcess` — how genuinely new identities enter the swarm
  mid-run (Poisson stream, a scheduled flash batch, or whitewash rejoins
  where departing peers immediately re-enter under fresh identities);
* :class:`DepartureProcess` — how identities leave (true departures that
  shrink the active set, or the legacy replacement semantics that keep the
  population size fixed);
* :class:`PopulationDynamics` — the bundle attached to
  :class:`~repro.sim.config.SimulationConfig.population`.

All types are frozen, hashable and JSON round-trippable, so a configured
dynamics bundle participates in the runner's content-addressed result cache
exactly like every other simulation parameter.  A config whose ``dynamics``
and ``population`` are ``None`` executes the unmodified legacy path —
bit-identical to the golden reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.behavior import PeerBehavior

__all__ = [
    "ChurnWave",
    "BehaviorShift",
    "ScenarioDynamics",
    "ArrivalProcess",
    "DepartureProcess",
    "PopulationDynamics",
    "ARRIVAL_PROCESS_KINDS",
    "DEPARTURE_MODES",
]

#: Arrival-process kinds understood by the variable-population engine.
ARRIVAL_PROCESS_KINDS = ("none", "poisson", "flash", "whitewash")

#: Departure modes: true departures vs legacy identity replacement.
DEPARTURE_MODES = ("shrink", "replace")


@dataclass(frozen=True)
class ChurnWave:
    """A window of rounds with elevated churn.

    Parameters
    ----------
    start:
        First round of the wave (0-based, inclusive).
    rounds:
        Number of consecutive rounds the wave lasts.
    intensity:
        For an independent wave, the extra per-peer departure probability
        during each wave round; for a correlated wave, the exact fraction of
        the swarm replaced together each wave round.
    correlated:
        Whether departures are drawn as one correlated batch (flash crowd /
        correlated failure) instead of independent per-peer coin flips.
    """

    start: int
    rounds: int = 1
    intensity: float = 0.1
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.correlated:
            if not 0.0 < self.intensity <= 1.0:
                raise ValueError("correlated intensity must be in (0, 1]")
        elif not 0.0 < self.intensity < 1.0:
            raise ValueError("independent intensity must be in (0, 1)")

    def covers(self, round_index: int) -> bool:
        """Whether ``round_index`` falls inside this wave."""
        return self.start <= round_index < self.start + self.rounds

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "start": self.start,
            "rounds": self.rounds,
            "intensity": self.intensity,
            "correlated": self.correlated,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChurnWave":
        """Inverse of :meth:`as_dict`."""
        return cls(
            start=int(data["start"]),
            rounds=int(data["rounds"]),
            intensity=float(data["intensity"]),
            correlated=bool(data["correlated"]),
        )


@dataclass(frozen=True)
class BehaviorShift:
    """A set of peers switching behaviour at a fixed round.

    The shift is applied at the *start* of ``round`` (before churn and
    decisions), so the new behaviour governs that round's decisions.  The
    affected peers keep their identity, history and capacity — only the
    protocol they execute (and optionally their group label) changes.
    """

    round: int
    peer_ids: Tuple[int, ...]
    behavior: PeerBehavior
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if not isinstance(self.peer_ids, tuple):
            object.__setattr__(self, "peer_ids", tuple(self.peer_ids))
        if not self.peer_ids:
            raise ValueError("a behavior shift needs at least one peer id")
        if len(set(self.peer_ids)) != len(self.peer_ids):
            raise ValueError("peer_ids must be distinct")
        if min(self.peer_ids) < 0:
            raise ValueError("peer ids must be >= 0")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "round": self.round,
            "peer_ids": list(self.peer_ids),
            "behavior": self.behavior.as_dict(),
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BehaviorShift":
        """Inverse of :meth:`as_dict`."""
        group = data.get("group")
        return cls(
            round=int(data["round"]),
            peer_ids=tuple(int(p) for p in data["peer_ids"]),
            behavior=PeerBehavior.from_dict(data["behavior"]),
            group=str(group) if group is not None else None,
        )


@dataclass(frozen=True)
class ScenarioDynamics:
    """The compiled dynamics of one scenario, as executed by the engine.

    Parameters
    ----------
    initial_capacities:
        Optional explicit per-peer upload capacities (length ``n_peers``).
        When given, the engine uses them verbatim instead of sampling from
        the bandwidth distribution — heterogeneous class populations get
        exact class shares rather than probabilistic ones.  Churn
        replacements still sample from the configured distribution.
    churn_waves:
        Churn waves layered on top of the base ``churn_rate``.  Waves may
        overlap; independent intensities add, and every correlated wave
        covering a round triggers its own batch replacement.
    behavior_shifts:
        Behaviour switches applied at the start of their round.
    """

    initial_capacities: Optional[Tuple[float, ...]] = None
    churn_waves: Tuple[ChurnWave, ...] = ()
    behavior_shifts: Tuple[BehaviorShift, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_capacities is not None:
            if not isinstance(self.initial_capacities, tuple):
                object.__setattr__(
                    self, "initial_capacities", tuple(self.initial_capacities)
                )
            if any(c <= 0 for c in self.initial_capacities):
                raise ValueError("initial capacities must be positive")
        if not isinstance(self.churn_waves, tuple):
            object.__setattr__(self, "churn_waves", tuple(self.churn_waves))
        if not isinstance(self.behavior_shifts, tuple):
            object.__setattr__(self, "behavior_shifts", tuple(self.behavior_shifts))

    def is_trivial(self) -> bool:
        """Whether this bundle changes nothing over the legacy path."""
        return (
            self.initial_capacities is None
            and not self.churn_waves
            and not self.behavior_shifts
        )

    # ------------------------------------------------------------------ #
    # round lookups (engine helpers)
    # ------------------------------------------------------------------ #
    def extra_rate(self, round_index: int) -> float:
        """Summed independent-wave intensity covering ``round_index``."""
        return sum(
            w.intensity
            for w in self.churn_waves
            if not w.correlated and w.covers(round_index)
        )

    def correlated_fraction(self, round_index: int) -> float:
        """Summed correlated-wave fraction covering ``round_index`` (capped at 1)."""
        fraction = sum(
            w.intensity
            for w in self.churn_waves
            if w.correlated and w.covers(round_index)
        )
        return min(1.0, fraction)

    def shifts_for_round(self, round_index: int) -> List[BehaviorShift]:
        """The behaviour shifts firing at ``round_index`` (declaration order)."""
        return [s for s in self.behavior_shifts if s.round == round_index]

    def max_peer_id(self) -> int:
        """Largest peer id referenced by any shift (-1 when none are)."""
        ids = [pid for shift in self.behavior_shifts for pid in shift.peer_ids]
        return max(ids) if ids else -1

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        return {
            "initial_capacities": (
                list(self.initial_capacities)
                if self.initial_capacities is not None
                else None
            ),
            "churn_waves": [w.as_dict() for w in self.churn_waves],
            "behavior_shifts": [s.as_dict() for s in self.behavior_shifts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioDynamics":
        """Inverse of :meth:`as_dict`."""
        capacities = data.get("initial_capacities")
        return cls(
            initial_capacities=(
                tuple(float(c) for c in capacities) if capacities is not None else None
            ),
            churn_waves=tuple(
                ChurnWave.from_dict(w) for w in data.get("churn_waves", ())
            ),
            behavior_shifts=tuple(
                BehaviorShift.from_dict(s) for s in data.get("behavior_shifts", ())
            ),
        )


# ---------------------------------------------------------------------- #
# variable-population primitives
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ArrivalProcess:
    """How genuinely new identities enter the swarm mid-run.

    Parameters
    ----------
    kind:
        ``"none"`` — no arrivals;
        ``"poisson"`` — a Poisson stream with expectation ``rate`` arrivals
        per round (independent across rounds);
        ``"flash"`` — a scheduled batch of ``count`` arrivals starting at
        round ``start``, spread evenly over ``duration`` rounds (a flash
        crowd of genuine newcomers, not identity replacements);
        ``"whitewash"`` — no exogenous arrivals; instead each *departing*
        peer immediately re-enters under a fresh identity with probability
        ``rate`` (Sybil-style whitewashing: same node, same capacity and
        behaviour, but a blank reputation).
    rate:
        Poisson: expected arrivals per round (> 0).  Whitewash: probability
        in (0, 1] that a departure rejoins under a new identity.
    start:
        First round arrivals may occur (flash: the batch round).
    count:
        Flash only: total number of arrivals in the batch.
    duration:
        Flash only: number of rounds the batch is spread over.
    behavior, group:
        Behaviour/group label given to newcomers.  ``None`` (the default)
        cycles newcomers through the initial population's per-peer
        behaviour/group pattern, preserving the declared mix.
    whitewash_groups:
        Whitewash only: restrict rejoins to departures whose group label is
        in this tuple (*targeted* identity churn — e.g. only a colluder
        clique sheds its reputation; honest departures leave for good).
        Empty (the default) whitewashes every departure.
    """

    kind: str = "none"
    rate: float = 0.0
    start: int = 0
    count: int = 0
    duration: int = 1
    behavior: Optional[PeerBehavior] = None
    group: Optional[str] = None
    whitewash_groups: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_PROCESS_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; "
                f"expected one of {ARRIVAL_PROCESS_KINDS}"
            )
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.kind == "poisson":
            if self.rate <= 0.0:
                raise ValueError("poisson arrivals need rate > 0")
            # Fail at declaration time rather than mid-run: sample_poisson
            # rejects rates whose exp(-rate) underflows.
            from repro.sim.churn import MAX_POISSON_RATE

            if self.rate > MAX_POISSON_RATE:
                raise ValueError(
                    f"poisson arrival rate must be <= {MAX_POISSON_RATE:g} "
                    "per round (sampling would be biased beyond that)"
                )
        if self.kind == "whitewash" and not 0.0 < self.rate <= 1.0:
            raise ValueError("whitewash rate must be in (0, 1]")
        if self.kind == "flash" and self.count < 1:
            raise ValueError("flash arrivals need count >= 1")
        if not isinstance(self.whitewash_groups, tuple):
            object.__setattr__(self, "whitewash_groups", tuple(self.whitewash_groups))
        if self.whitewash_groups:
            if self.kind != "whitewash":
                raise ValueError("whitewash_groups requires kind 'whitewash'")
            if len(set(self.whitewash_groups)) != len(self.whitewash_groups):
                raise ValueError("whitewash_groups must be distinct")

    def whitewashes(self, group: str) -> bool:
        """Whether a departure from ``group`` is eligible to rejoin."""
        return not self.whitewash_groups or group in self.whitewash_groups

    def is_none(self) -> bool:
        """Whether this process never produces an arrival."""
        return self.kind == "none"

    def flash_count_for_round(self, round_index: int) -> int:
        """Scheduled flash arrivals joining at ``round_index`` (0 otherwise).

        The batch is spread as evenly as possible over ``duration`` rounds
        starting at ``start``, earlier rounds receiving the remainder.
        """
        if self.kind != "flash":
            return 0
        offset = round_index - self.start
        if not 0 <= offset < self.duration:
            return 0
        base, remainder = divmod(self.count, self.duration)
        return base + (1 if offset < remainder else 0)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        data: Dict[str, object] = {
            "kind": self.kind,
            "rate": self.rate,
            "start": self.start,
            "count": self.count,
            "duration": self.duration,
            "behavior": self.behavior.as_dict() if self.behavior else None,
            "group": self.group,
        }
        # Omitted at its default so every pre-targeting fingerprint (and
        # the cache entries stored under it) stays valid.
        if self.whitewash_groups:
            data["whitewash_groups"] = list(self.whitewash_groups)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArrivalProcess":
        """Inverse of :meth:`as_dict`."""
        behavior = data.get("behavior")
        group = data.get("group")
        return cls(
            kind=str(data["kind"]),
            rate=float(data.get("rate", 0.0)),
            start=int(data.get("start", 0)),
            count=int(data.get("count", 0)),
            duration=int(data.get("duration", 1)),
            behavior=PeerBehavior.from_dict(behavior) if behavior else None,
            group=str(group) if group is not None else None,
            whitewash_groups=tuple(
                str(g) for g in data.get("whitewash_groups", ())
            ),
        )


@dataclass(frozen=True)
class DepartureProcess:
    """How identities leave the swarm.

    Parameters
    ----------
    rate:
        Per-peer per-round departure probability (0 disables departures
        unless ``group_rates`` adds targeted ones).
    mode:
        ``"shrink"`` — departures genuinely leave and the active set
        shrinks; ``"replace"`` — the legacy semantics: the departed slot is
        immediately taken by a fresh identity with a resampled capacity,
        exactly as :func:`repro.sim.churn.apply_churn` does (this is the
        differential-testing bridge to the fixed-population engine).
    min_active:
        Floor on the active population; once departures would push the
        active count below it, the remaining departures of that round are
        suppressed (a swarm never dissolves below a viable core).
    group_rates:
        Per-group departure-rate surcharges as sorted ``(group, extra)``
        pairs — *targeted* identity churn: peers in a named group depart
        with probability ``rate + extra``.  Shrink mode only; combined with
        a group-targeted whitewash arrival this models adversaries that
        deliberately cycle identities to shed their reputation.
    """

    rate: float = 0.0
    mode: str = "shrink"
    min_active: int = 2
    group_rates: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("departure rate must be in [0, 1)")
        if self.mode not in DEPARTURE_MODES:
            raise ValueError(
                f"unknown departure mode {self.mode!r}; "
                f"expected one of {DEPARTURE_MODES}"
            )
        if self.min_active < 2:
            raise ValueError("min_active must be at least 2")
        if not isinstance(self.group_rates, tuple):
            object.__setattr__(
                self, "group_rates", tuple(tuple(pair) for pair in self.group_rates)
            )
        if self.group_rates:
            if self.mode != "shrink":
                raise ValueError("group_rates require 'shrink' departures")
            groups = [group for group, _extra in self.group_rates]
            if len(set(groups)) != len(groups):
                raise ValueError("group_rates groups must be distinct")
            for group, extra in self.group_rates:
                if not 0.0 < extra < 1.0 or not self.rate + extra < 1.0:
                    raise ValueError(
                        f"group rate for {group!r} must keep the combined "
                        f"rate in (0, 1), got {self.rate} + {extra}"
                    )
            # Canonical order: fingerprints must not depend on declaration
            # order of the same targeting.
            object.__setattr__(
                self, "group_rates", tuple(sorted(self.group_rates))
            )

    def extra_rates(self) -> Optional[Dict[str, float]]:
        """The targeted surcharges as a mapping (``None`` when untargeted)."""
        if not self.group_rates:
            return None
        return dict(self.group_rates)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        data: Dict[str, object] = {
            "rate": self.rate,
            "mode": self.mode,
            "min_active": self.min_active,
        }
        # Omitted at its default so pre-targeting fingerprints stay valid.
        if self.group_rates:
            data["group_rates"] = [list(pair) for pair in self.group_rates]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DepartureProcess":
        """Inverse of :meth:`as_dict`."""
        return cls(
            rate=float(data.get("rate", 0.0)),
            mode=str(data.get("mode", "shrink")),
            min_active=int(data.get("min_active", 2)),
            group_rates=tuple(
                (str(group), float(extra))
                for group, extra in data.get("group_rates", ())
            ),
        )


@dataclass(frozen=True)
class PopulationDynamics:
    """The variable-population bundle of one simulation.

    Attaching a non-trivial ``PopulationDynamics`` to a
    :class:`~repro.sim.config.SimulationConfig` routes the run onto the
    variable-population engine
    (:class:`~repro.sim.population.PopulationSimulation`): arrivals create
    genuinely new identities with fresh peer ids, and departures in
    ``"shrink"`` mode remove identities for good.  ``max_active`` caps the
    active population (a tracker's capacity limit); 0 means unbounded.

    The degenerate bundle — no arrivals, ``"replace"`` departures — is the
    legacy churn model expressed in the new vocabulary; the differential
    suite proves the variable engine reproduces the fixed-population engine
    bit-for-bit in that configuration.
    """

    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    departure: DepartureProcess = field(default_factory=DepartureProcess)
    max_active: int = 0

    def __post_init__(self) -> None:
        if self.max_active < 0:
            raise ValueError("max_active must be >= 0 (0 means unbounded)")
        if self.arrival.kind == "whitewash" and (
            self.departure.rate <= 0.0 and not self.departure.group_rates
        ):
            raise ValueError("whitewash arrivals need a positive departure rate")
        if not self.arrival.is_none() and self.departure.mode != "shrink":
            # Replacement departures swap identities in-place per slot, so a
            # slot's record would blend several identities — incoherent next
            # to arrival records that each carry one identity's lifecycle.
            # "replace" exists only as the no-arrival differential bridge to
            # the fixed-population engine.
            raise ValueError(
                "arrival processes require 'shrink' departures; 'replace' "
                "mode is the degenerate no-arrival churn model"
            )

    def is_trivial(self) -> bool:
        """Whether this bundle changes nothing over the legacy path."""
        return (
            self.arrival.is_none()
            and self.departure.rate == 0.0
            and not self.departure.group_rates
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        return {
            "arrival": self.arrival.as_dict(),
            "departure": self.departure.as_dict(),
            "max_active": self.max_active,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PopulationDynamics":
        """Inverse of :meth:`as_dict`."""
        return cls(
            arrival=ArrivalProcess.from_dict(data["arrival"]),
            departure=DepartureProcess.from_dict(data["departure"]),
            max_active=int(data.get("max_active", 0)),
        )
