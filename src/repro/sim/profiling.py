"""Per-phase wall-clock instrumentation for the simulation engines.

The engines' hot loops are linear pipelines (population churn -> decision
-> allocation -> transfer -> metrics), so the profiler is built around a
*split timer*: :meth:`PhaseProfiler.tick` marks a reference point and each
:meth:`PhaseProfiler.lap` charges the elapsed time since the previous
mark to a named phase.  Scoped blocks outside a linear flow can use the
:meth:`PhaseProfiler.phase` context manager instead; both styles
accumulate into the same per-phase table.

Phase names are free-form.  Dotted names (``"decision.rank"``) denote
sub-phases: they roll up into their top-level phase in
:meth:`PhaseProfiler.top_level`, which reporting surfaces use for the
coarse (churn / decision / allocation / transfer / metrics) breakdown
while keeping the fine-grained attribution available.

Near-zero overhead when disabled
--------------------------------
Engines never branch on a ``profile`` flag in the hot loop; they call the
profiler unconditionally.  A disabled run is handed :data:`NULL_PROFILER`,
whose methods are no-op stubs — the per-round cost is a handful of empty
method calls, unmeasurable against even a 1000-rounds/sec engine.  Use
:func:`profiler_for` to pick the implementation from a boolean.

The machine-readable payload (:meth:`PhaseProfiler.as_payload`) is what
``BENCH_population.json`` entries, the ``--profile`` CLI surfaces and the
sweep/atlas reports embed, so a regression can always be attributed to a
phase after the fact.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Mapping, Optional, Sequence

__all__ = [
    "CANONICAL_PHASES",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "aggregate_phases",
    "payload_seconds",
    "phases_payload",
    "profile_seconds_of",
    "profiler_for",
    "render_phases",
    "top_level_phases",
]

#: Canonical engine phases, in pipeline order.  Engines may emit any subset
#: (the fixed engine fuses decision+transfer for long history windows) and
#: may refine them with dotted sub-phases; reporting orders known phases
#: first and appends unknown names alphabetically.
CANONICAL_PHASES = ("churn", "decision", "allocation", "transfer", "metrics")

#: Legacy phase names still emitted by the pure-python engines, mapped to
#: their canonical successors for mixed-engine reports.
LEGACY_PHASE_ALIASES = {"population": "churn"}


def _phase_sort_key(name: str):
    top = name.split(".", 1)[0]
    try:
        rank = CANONICAL_PHASES.index(top)
    except ValueError:
        rank = len(CANONICAL_PHASES)
    return (rank, name)


def top_level_phases(seconds: Mapping[str, float]) -> Dict[str, float]:
    """Roll dotted sub-phases up into their top-level phase.

    ``{"decision.rank": 1.0, "decision.select": 0.5}`` becomes
    ``{"decision": 1.5}``; legacy names are translated via
    :data:`LEGACY_PHASE_ALIASES`.
    """
    rolled: Dict[str, float] = {}
    for name, value in seconds.items():
        top = name.split(".", 1)[0]
        top = LEGACY_PHASE_ALIASES.get(top, top)
        rolled[top] = rolled.get(top, 0.0) + value
    return dict(sorted(rolled.items(), key=lambda kv: _phase_sort_key(kv[0])))


def aggregate_phases(
    breakdowns: Iterable[Mapping[str, float]],
) -> Dict[str, float]:
    """Sum several phase tables into one (for sweep/atlas roll-ups)."""
    total: Dict[str, float] = {}
    for breakdown in breakdowns:
        for name, value in breakdown.items():
            total[name] = total.get(name, 0.0) + value
    return dict(sorted(total.items(), key=lambda kv: _phase_sort_key(kv[0])))


def profile_seconds_of(simulation) -> Dict[str, float]:
    """The finest-grained phase table a profiled engine exposes.

    The vec engine records dotted sub-phases on its ``profiler``; the
    pure-python engines keep a flat ``phase_seconds`` dict (whose
    ``phase_seconds`` property on the vec engine would collapse the
    sub-phase attribution).  Returns a copy.
    """
    profiler = getattr(simulation, "profiler", None)
    if profiler is not None:
        return dict(profiler.seconds)
    return dict(simulation.phase_seconds)


def phases_payload(
    seconds: Mapping[str, float], rounds: Optional[int] = None
) -> dict:
    """Machine-readable breakdown of a phase table.

    The common serialisation for bench entries, ``--profile`` CLI output
    and sweep/atlas run reports: top-level roll-ups under ``"phases"``,
    dotted sub-phases (when present) under ``"subphases"``, and a
    per-round normalisation when ``rounds`` is known.  Works on any phase
    mapping — a :class:`PhaseProfiler`'s ``seconds`` or the plain
    ``phase_seconds`` dict of the pure-python engines.
    """
    rolled = top_level_phases(seconds)
    payload = {
        "phases": {name: round(value, 6) for name, value in rolled.items()},
        "total_seconds": round(sum(seconds.values()), 6),
    }
    fine = {
        name: round(value, 6)
        for name, value in sorted(
            seconds.items(), key=lambda kv: _phase_sort_key(kv[0])
        )
        if "." in name
    }
    if fine:
        payload["subphases"] = fine
    if rounds:
        payload["rounds"] = rounds
        payload["ms_per_round"] = {
            name: round(value / rounds * 1e3, 4)
            for name, value in rolled.items()
        }
    return payload


def payload_seconds(payload: Mapping) -> Dict[str, float]:
    """Reconstruct the finest-grained seconds table from a phase payload.

    Inverse of :func:`phases_payload` for rendering/aggregation: dotted
    sub-phases replace their share of the top-level roll-up so nothing is
    double-counted when the table is rolled up again.
    """
    seconds: Dict[str, float] = dict(payload["phases"])
    for name, value in payload.get("subphases", {}).items():
        top = name.split(".", 1)[0]
        if top in seconds:
            seconds[top] = max(0.0, seconds[top] - value)
        seconds[name] = value
    return seconds


def render_phases(
    seconds: Mapping[str, float],
    rounds: Optional[int] = None,
    indent: str = "",
) -> str:
    """Fixed-width text table of a phase breakdown.

    ``rounds`` adds a ms/round column; shares are of the summed phases.
    Dotted sub-phases are listed under their top-level roll-up.
    """
    rolled = top_level_phases(seconds)
    total = sum(rolled.values())
    subs: Dict[str, Dict[str, float]] = {}
    for name, value in seconds.items():
        if "." in name:
            top, sub = name.split(".", 1)
            top = LEGACY_PHASE_ALIASES.get(top, top)
            subs.setdefault(top, {})[sub] = value

    per_round = f" {'ms/round':>9}" if rounds else ""
    lines = [f"{indent}{'phase':<22} {'seconds':>9}{per_round} {'share':>7}"]

    def row(label: str, value: float, width: int = 22) -> str:
        share = value / total if total > 0 else 0.0
        cells = f"{indent}{label:<{width}} {value:>9.4f}"
        if rounds:
            cells += f" {value / rounds * 1e3:>9.3f}"
        return cells + f" {share:>6.1%}"

    for name, value in rolled.items():
        lines.append(row(name, value))
        for sub, sub_value in sorted(subs.get(name, {}).items()):
            lines.append(row(f"  .{sub}", sub_value))
    lines.append(row("total", total))
    return "\n".join(lines)


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    Two usage styles, freely mixed::

        prof.tick()                 # linear flows: mark, then lap
        churn_step()
        prof.lap("churn")
        decide()
        prof.lap("decision")

        with prof.phase("metrics"):  # scoped blocks
            build_records()
    """

    __slots__ = ("seconds", "_mark")

    #: Real profiler; :class:`NullProfiler` overrides this to ``False`` so
    #: engines can skip building auxiliary diagnostics when disabled.
    enabled = True

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._mark = perf_counter()

    def tick(self) -> None:
        """Set the reference point for the next :meth:`lap`."""
        self._mark = perf_counter()

    def lap(self, name: str) -> None:
        """Charge the time since the last mark to ``name`` and re-mark."""
        now = perf_counter()
        self.seconds[name] = self.seconds.get(name, 0.0) + (now - self._mark)
        self._mark = now

    @contextmanager
    def phase(self, name: str):
        """Scoped alternative to tick/lap; does not disturb the mark."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, value: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + value

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold another phase table (or profiler ``.seconds``) into this one."""
        for name, value in other.items():
            self.add(name, value)

    def total(self) -> float:
        return sum(self.seconds.values())

    def top_level(self) -> Dict[str, float]:
        return top_level_phases(self.seconds)

    def as_payload(self, rounds: Optional[int] = None) -> dict:
        """Machine-readable breakdown for bench entries and run reports."""
        return phases_payload(self.seconds, rounds=rounds)

    def render(self, rounds: Optional[int] = None, indent: str = "") -> str:
        return render_phases(self.seconds, rounds=rounds, indent=indent)


class NullProfiler(PhaseProfiler):
    """No-op profiler handed to unprofiled runs; every method is a stub."""

    __slots__ = ()

    enabled = False

    def tick(self) -> None:
        pass

    def lap(self, name: str) -> None:
        pass

    @contextmanager
    def phase(self, name: str):
        yield

    def add(self, name: str, value: float) -> None:
        pass

    def merge(self, other: Mapping[str, float]) -> None:
        pass


#: Shared no-op instance; its ``seconds`` stays empty by construction, so
#: sharing one across every unprofiled simulation is safe.
NULL_PROFILER = NullProfiler()


def profiler_for(enabled: bool) -> PhaseProfiler:
    """A fresh recording profiler, or the shared no-op one."""
    return PhaseProfiler() if enabled else NULL_PROFILER
