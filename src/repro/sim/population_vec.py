"""The vectorised batch engine (numpy whole-round array operations).

:class:`VecSimulation` is the third engine of the library: it executes the
same two-phase round structure as the reference engines, but reshapes the
peer-at-a-time control flow into whole-batch numpy array operations over
flat peer-id-indexed state matrices.  Rounds/sec stays roughly flat in
population size up to the sorting terms, which is what makes 10k–100k-peer
swarms reachable — the pure-python engines collapse roughly 4× per
population doubling.

Statistical equivalence, not bit-identity
-----------------------------------------
Unlike the ``fast``/``reference`` pair — which consume the identical
Mersenne-Twister stream and are proven **bit-identical** — this engine
draws its randomness from a numpy ``Generator``.  Per-run results therefore
differ from the replica engines in their random draws while sampling from
the *same stochastic process*: every decision rule (candidate windows,
ranking keys, stranger policies, allocation arithmetic, arrival/departure
processes) is implemented with the same mathematics, and only tie-breaking
and sampling randomness differ.  The contract is enforced by the
``tests/statistical/`` suite: per-seed-batch distributional comparisons
(two-sample KS tests on download shares, per-cohort PRA and eviction-rate
tolerances) between ``vec`` and ``fast`` across the whole scenario
registry, with pinned thresholds that fail loudly on drift.

Because the engine choice never changes the modelled process, it is kept
out of job cache fingerprints — a cached ``fast`` result is a valid answer
for a ``vec`` request and vice versa (both are draws from the same
distribution; per-seed reproducibility holds within one engine).

State layout
------------
All per-peer state lives in dense peer-id-indexed arrays (capacity,
aspiration, behaviour/group codes, cohort, join/departure rounds, transfer
accounting), grown geometrically as identities arrive.  Relational state is
kept as flat COO edge lists:

* **history** — the last two rounds of interactions as pair-key-sorted
  ``(packed key, amount)`` arrays — CSR-style: grouped by receiver,
  senders ascending within each group (candidate windows never look
  further back); zero-amount refusals are included, exactly as the
  reference records them; departures compact the arrays in place;
* **loyalty streaks** — ``(packed key, streak)`` pairs for peers whose
  sender delivered a positive amount in the immediately preceding round
  (the only state the Sort-Loyal key can observe) — maintained only when
  a Sort-Loyal behaviour is registered, since nothing else observes it;
* **pending requests** — ``(target, requester)`` pairs issued last round.

Each round, candidate selection, ranking, partner cutoffs, stranger pools,
allocation and transfer accounting are computed with the grouped partial-
selection kernels of :mod:`repro.sim._vec_kernels` (``np.argpartition``
top-k over per-peer segments with exact lexicographic tie-breaking — see
that module for the exactness contract) plus ``np.bincount`` group
operations over these edge lists; population change
(replacement churn, scenario waves and shifts, true departures with
``min_active`` truncation, whitewash rejoins, Poisson/flash arrivals with
the ``max_active`` cap) is applied as batched array updates.

The engine accepts **both** population models: fixed-slot configs
(including non-trivial :class:`~repro.sim.dynamics.ScenarioDynamics`) and
variable-population configs (any :class:`~repro.sim.dynamics.ArrivalProcess`
/ :class:`~repro.sim.dynamics.DepartureProcess` combination), so the whole
scenario registry can run vectorised.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim._vec_kernels import (
    ScratchBuffers,
    grouped_topk,
    merge_sorted_histories,
    segment_bounds,
)
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult
from repro.sim.metrics import PeerRecord
from repro.sim.profiling import profiler_for

__all__ = ["VecSimulation"]

# Compact behaviour-dimension codes used by the per-edge branch masks.
_RANK_CODES = {
    "fastest": 0, "slowest": 1, "proximity": 2,
    "adaptive": 3, "loyal": 4, "random": 5,
}
_ALLOC_CODES = {"equal_split": 0, "prop_share": 1, "freeride": 2}
_SPOL_CODES = {"none": 0, "periodic": 1, "when_needed": 2, "defect": 3}

_COHORT_INITIAL = 0
_COHORT_ARRIVAL = 1
_COHORT_WHITEWASH = 2
_COHORT_LABELS = ("initial", "arrival", "whitewash")

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)

#: Vectorised rejection-sampling rounds before falling back to the exact
#: per-row python path (only ever reached on pathologically small pools).
_MAX_RESAMPLE_ROUNDS = 64

#: Peer-pair edges are keyed as ``(a << 32) | b``.  Peer ids stay far below
#: 2**31, so the packing is collision-free, order-preserving per ``a``, and
#: independent of the current id bound — sorted key arrays stay valid as
#: the population grows.
_KEY_SHIFT = 32
_KEY_MASK = (1 << _KEY_SHIFT) - 1


def _pair_keys(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a << _KEY_SHIFT) | b


def _member(query: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``query`` in ``sorted_keys`` (both int64 key arrays)."""
    if query.size == 0 or sorted_keys.size == 0:
        return np.zeros(query.shape, dtype=bool)
    j = np.searchsorted(sorted_keys, query)
    hit = np.zeros(query.shape, dtype=bool)
    valid = j < sorted_keys.size
    hit[valid] = sorted_keys[j[valid]] == query[valid]
    return hit


def _group_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums: start offset of each group in a grouped sort."""
    offsets = np.empty(counts.size, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts[:-1], out=offsets[1:])
    return offsets


class VecSimulation:
    """One simulation run executed as whole-round numpy batch operations.

    Parameters mirror :class:`repro.sim.engine.Simulation` /
    :class:`repro.sim.population.PopulationSimulation`: ``behaviors`` and
    ``groups`` follow the one-or-n broadcast convention over the initial
    population, ``seed`` pins the run's random draws (numpy ``Generator``
    for array draws plus a ``random.Random`` for capacity sampling — runs
    are bit-reproducible per seed *within this engine*, but not against the
    replica engines; see the module docstring), and ``profile`` accumulates
    wall-clock per-phase timings in ``phase_seconds``.
    """

    def __init__(
        self,
        config: SimulationConfig,
        behaviors: Sequence[PeerBehavior],
        groups: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
        profile: bool = False,
    ):
        self.config = config
        self._variable = config.is_variable_population
        self._population = config.population if self._variable else None
        dynamics = config.dynamics
        if dynamics is not None and dynamics.is_trivial():
            dynamics = None
        self._dynamics = dynamics

        self._rng = np.random.default_rng(seed)
        # Capacity draws go through BandwidthDistribution.sample, which
        # expects a stdlib Random; an independent deterministic stream.
        self._py_rng = random.Random(seed)
        self._distribution = config.distribution()

        n = config.n_peers
        behaviors = list(behaviors)
        if len(behaviors) == 1:
            behaviors = behaviors * n
        if len(behaviors) != n:
            raise ValueError(
                f"expected 1 or {n} behaviors, got {len(behaviors)}"
            )
        if groups is None:
            group_labels = ["default"] * n
        else:
            group_labels = list(groups)
            if len(group_labels) == 1:
                group_labels = group_labels * n
            if len(group_labels) != n:
                raise ValueError(
                    f"expected 1 or {n} group labels, got {len(group_labels)}"
                )

        # ---- behaviour / group registries ----------------------------- #
        # Every behaviour and group label the run can ever reference is
        # known at construction (initial population, arrival overrides,
        # scenario shifts), so the per-code lookup tables are frozen here.
        self._b_objects: List[PeerBehavior] = []
        self._b_index: Dict[PeerBehavior, int] = {}
        self._g_labels: List[str] = []
        self._g_index: Dict[str, int] = {}

        init_bcodes = np.array(
            [self._register_behavior(b) for b in behaviors], dtype=np.int64
        )
        init_gcodes = np.array(
            [self._register_group(g) for g in group_labels], dtype=np.int64
        )
        self._init_bcode_pattern = init_bcodes
        self._init_gcode_pattern = init_gcodes

        if self._population is not None:
            arrival = self._population.arrival
            if arrival.behavior is not None:
                self._register_behavior(arrival.behavior)
            if arrival.group is not None:
                self._register_group(arrival.group)

        # Behaviour shifts grouped by round, with codes precomputed.
        self._shifts_by_round: Dict[int, list] = {}
        if dynamics is not None:
            for shift in dynamics.behavior_shifts:
                bcode = self._register_behavior(shift.behavior)
                gcode = (
                    self._register_group(shift.group)
                    if shift.group is not None
                    else None
                )
                self._shifts_by_round.setdefault(shift.round, []).append(
                    (np.array(shift.peer_ids, dtype=np.int64), bcode, gcode)
                )

        self._freeze_tables()

        # ---- dense peer-id-indexed state ------------------------------ #
        capacity0 = max(16, 2 * n)
        self._alloc_len = capacity0
        self._capacity = np.zeros(capacity0)
        self._aspiration = np.zeros(capacity0)
        self._bcode = np.zeros(capacity0, dtype=np.int64)
        self._gcode = np.zeros(capacity0, dtype=np.int64)
        self._cohort = np.zeros(capacity0, dtype=np.int64)
        self._joined = np.zeros(capacity0, dtype=np.int64)
        self._departed = np.full(capacity0, -1, dtype=np.int64)
        self._presence = np.zeros(capacity0, dtype=np.int64)
        self._m_down = np.zeros(capacity0)
        self._m_up = np.zeros(capacity0)

        pinned = dynamics.initial_capacities if dynamics is not None else None
        if pinned is not None:
            caps = np.array(pinned, dtype=np.float64)
        else:
            caps = np.array(
                self._distribution.sample_population(n, self._py_rng),
                dtype=np.float64,
            )
        self._capacity[:n] = caps
        self._bcode[:n] = init_bcodes
        self._gcode[:n] = init_gcodes
        self._aspiration[:n] = caps / self._b_slots[init_bcodes]

        self._next_id = n
        self._active_ids = np.arange(n, dtype=np.int64)

        # Persistent id->local-position scratch.  Only ever read through
        # an *active* id (relational state is purged on departure), so a
        # per-round ``pos[ids] = arange(n)`` refresh suffices — no O(id
        # bound) ``full(-1)`` rebuild, which matters under sustained
        # whitewash churn where the id space grows a few percent per round.
        self._pos = np.zeros(capacity0, dtype=np.int64)
        self._iota = np.arange(capacity0, dtype=np.int64)
        self._scratch = ScratchBuffers()

        # ---- relational state as pair-key-sorted edge lists ----------- #
        # History rounds are ``(sorted packed (receiver, sender) keys,
        # amounts)`` — the sort groups edges by receiver, which is what
        # the grouped kernels consume directly.
        self._hist_prev: Tuple[np.ndarray, np.ndarray] = (_EMPTY_I, _EMPTY_F)
        self._hist_old: Tuple[np.ndarray, np.ndarray] = (_EMPTY_I, _EMPTY_F)
        # Loyalty streaks: (sorted pair keys, streak values), keyed by
        # ``_pair_keys(receiver, sender)``.
        self._streak: Tuple[np.ndarray, np.ndarray] = (_EMPTY_I, _EMPTY_I)
        self._pending: Tuple[np.ndarray, np.ndarray] = (_EMPTY_I, _EMPTY_I)

        self._churn_events = 0
        self._explicit_refusals = 0
        self._arrivals = 0
        self._departures = 0
        self._active_counts: List[int] = []

        # Legacy-shaped results: fixed-population runs, and the degenerate
        # variable bundle (no arrivals, replacement departures) — exactly
        # the cases where the replica engines emit legacy records.
        self._legacy_records = self._population is None or (
            self._population.arrival.is_none()
            and self._population.departure.mode == "replace"
        )

        #: Per-phase wall-clock instrumentation (no-op unless ``profile``);
        #: see :mod:`repro.sim.profiling` for the phase vocabulary.
        self.profiler = profiler_for(profile)

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Top-level phase breakdown (churn/decision/allocation/transfer/
        metrics), empty unless the run was constructed with ``profile``."""
        return self.profiler.top_level()

    # ------------------------------------------------------------------ #
    # registries
    # ------------------------------------------------------------------ #
    def _register_behavior(self, behavior: PeerBehavior) -> int:
        code = self._b_index.get(behavior)
        if code is None:
            code = len(self._b_objects)
            self._b_index[behavior] = code
            self._b_objects.append(behavior)
        return code

    def _register_group(self, label: str) -> int:
        code = self._g_index.get(label)
        if code is None:
            code = len(self._g_labels)
            self._g_index[label] = code
            self._g_labels.append(label)
        return code

    def _freeze_tables(self) -> None:
        bs = self._b_objects
        self._b_window = np.array([b.candidate_window for b in bs], dtype=np.int64)
        self._b_k = np.array([b.partner_count for b in bs], dtype=np.int64)
        self._b_rank = np.array([_RANK_CODES[b.ranking] for b in bs], dtype=np.int64)
        self._b_alloc = np.array(
            [_ALLOC_CODES[b.allocation] for b in bs], dtype=np.int64
        )
        self._b_spol = np.array(
            [_SPOL_CODES[b.stranger_policy] for b in bs], dtype=np.int64
        )
        self._b_h = np.array([b.stranger_count for b in bs], dtype=np.int64)
        self._b_period = np.array([b.stranger_period for b in bs], dtype=np.int64)
        self._b_slots = np.array(
            [max(1, b.total_slots) for b in bs], dtype=np.int64
        )
        self._b_labels = [b.label() for b in bs]
        # Loyalty streaks are observable only through the Sort-Loyal
        # ranking key; when no registered behaviour uses it, the engine
        # skips streak maintenance entirely.
        self._has_loyal = bool((self._b_rank == _RANK_CODES["loyal"]).any())

        n_groups = len(self._g_labels)
        self._g_extra = np.zeros(n_groups)
        self._g_whitewash = np.ones(n_groups, dtype=bool)
        if self._population is not None:
            extra = self._population.departure.extra_rates()
            if extra:
                for label, surcharge in extra.items():
                    code = self._g_index.get(label)
                    if code is not None:
                        self._g_extra[code] = surcharge
            targeted = self._population.arrival.whitewash_groups
            if targeted:
                self._g_whitewash[:] = False
                for label in targeted:
                    code = self._g_index.get(label)
                    if code is not None:
                        self._g_whitewash[code] = True

    # ------------------------------------------------------------------ #
    # dense-state growth
    # ------------------------------------------------------------------ #
    def _ensure(self, needed: int) -> None:
        if needed <= self._alloc_len:
            return
        new_len = self._alloc_len
        while new_len < needed:
            new_len *= 2
        pad = new_len - self._alloc_len
        self._capacity = np.concatenate([self._capacity, np.zeros(pad)])
        self._aspiration = np.concatenate([self._aspiration, np.zeros(pad)])
        self._bcode = np.concatenate(
            [self._bcode, np.zeros(pad, dtype=np.int64)]
        )
        self._gcode = np.concatenate(
            [self._gcode, np.zeros(pad, dtype=np.int64)]
        )
        self._cohort = np.concatenate(
            [self._cohort, np.zeros(pad, dtype=np.int64)]
        )
        self._joined = np.concatenate(
            [self._joined, np.zeros(pad, dtype=np.int64)]
        )
        self._departed = np.concatenate(
            [self._departed, np.full(pad, -1, dtype=np.int64)]
        )
        self._presence = np.concatenate(
            [self._presence, np.zeros(pad, dtype=np.int64)]
        )
        self._m_down = np.concatenate([self._m_down, np.zeros(pad)])
        self._m_up = np.concatenate([self._m_up, np.zeros(pad)])
        self._pos = np.concatenate([self._pos, np.zeros(pad, dtype=np.int64)])
        self._iota = np.arange(new_len, dtype=np.int64)
        self._alloc_len = new_len

    # ------------------------------------------------------------------ #
    # relational-state maintenance
    # ------------------------------------------------------------------ #
    def _forget(self, gone: np.ndarray) -> None:
        """Erase ``gone`` identities from history, streaks and pending.

        Dropping edges on *both* sides covers every forgetting rule of the
        replica engines at once: the departed/churned identity's own state
        is cleared (it is the receiver side of its history and streaks) and
        every survivor forgets it (the sender side, and either side of a
        pending pair).
        """
        gone_mask = np.zeros(self._next_id, dtype=bool)
        gone_mask[gone] = True
        for attr in ("_hist_prev", "_hist_old"):
            keys, amt = getattr(self, attr)
            if keys.size:
                keep = ~(
                    gone_mask[keys >> _KEY_SHIFT] | gone_mask[keys & _KEY_MASK]
                )
                if not keep.all():
                    # Boolean compaction: the surviving edges are copied
                    # into fresh dense arrays (still key-sorted), so
                    # departed identities never linger as dead rows.
                    setattr(self, attr, (keys[keep], amt[keep]))
        s_keys, s_val = self._streak
        if s_keys.size:
            keep = ~(
                gone_mask[s_keys >> _KEY_SHIFT] | gone_mask[s_keys & _KEY_MASK]
            )
            if not keep.all():
                self._streak = (s_keys[keep], s_val[keep])
        p_tgt, p_req = self._pending
        if p_tgt.size:
            keep = ~(gone_mask[p_tgt] | gone_mask[p_req])
            if not keep.all():
                self._pending = (p_tgt[keep], p_req[keep])

    def _streak_lookup(self, recv: np.ndarray, send: np.ndarray) -> np.ndarray:
        """Current loyalty streak per (recv, send) pair (0 when absent)."""
        out = np.zeros(recv.size)
        s_keys, s_val = self._streak
        if s_keys.size and recv.size:
            query = _pair_keys(recv, send)
            j = np.minimum(np.searchsorted(s_keys, query), s_keys.size - 1)
            hit = s_keys[j] == query
            out[hit] = s_val[j[hit]]
        return out

    # ------------------------------------------------------------------ #
    # population step
    # ------------------------------------------------------------------ #
    def _sample_capacities(self, count: int) -> np.ndarray:
        return np.array(
            self._distribution.sample_population(count, self._py_rng),
            dtype=np.float64,
        )

    def _apply_replacement(self, churned: np.ndarray, round_index: int) -> None:
        """Replacement churn: fresh identity takes over the slot in place."""
        caps = self._sample_capacities(churned.size)
        self._capacity[churned] = caps
        self._aspiration[churned] = caps / self._b_slots[self._bcode[churned]]
        self._joined[churned] = round_index
        self._forget(churned)
        self._churn_events += churned.size

    def _spawn_batch(
        self,
        caps: np.ndarray,
        bcodes: np.ndarray,
        gcodes: np.ndarray,
        cohort: int,
        round_index: int,
    ) -> None:
        count = caps.size
        if count == 0:
            return
        start = self._next_id
        end = start + count
        self._ensure(end)
        idx = np.arange(start, end, dtype=np.int64)
        self._capacity[idx] = caps
        self._bcode[idx] = bcodes
        self._gcode[idx] = gcodes
        self._cohort[idx] = cohort
        self._joined[idx] = round_index
        self._aspiration[idx] = caps / self._b_slots[bcodes]
        self._next_id = end
        self._active_ids = np.concatenate([self._active_ids, idx])
        self._arrivals += count
        self._churn_events += count

    def _spawn_arrivals(self, count: int, round_index: int) -> None:
        if count <= 0:
            return
        arrival = self._population.arrival
        idx = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        cycle = idx % self.config.n_peers
        if arrival.behavior is not None:
            bcodes = np.full(count, self._b_index[arrival.behavior], dtype=np.int64)
        else:
            bcodes = self._init_bcode_pattern[cycle]
        if arrival.group is not None:
            gcodes = np.full(count, self._g_index[arrival.group], dtype=np.int64)
        else:
            gcodes = self._init_gcode_pattern[cycle]
        self._spawn_batch(
            self._sample_capacities(count), bcodes, gcodes,
            _COHORT_ARRIVAL, round_index,
        )

    def _admissible(self, requested: int) -> int:
        cap = self._population.max_active
        if cap <= 0:
            return requested
        return max(0, min(requested, cap - self._active_ids.size))

    def _population_step_variable(self, round_index: int) -> None:
        population = self._population
        departure = population.departure
        arrival = population.arrival
        ids = self._active_ids
        n = ids.size

        if departure.rate > 0.0 or departure.group_rates:
            if departure.mode == "replace":
                mask = self._rng.random(n) < departure.rate
                churned = ids[mask]
                if churned.size:
                    self._apply_replacement(churned, round_index)
            else:
                if departure.group_rates:
                    probs = departure.rate + self._g_extra[self._gcode[ids]]
                    mask = self._rng.random(n) < probs
                else:
                    mask = self._rng.random(n) < departure.rate
                if mask.any():
                    allowed = n - departure.min_active
                    if allowed <= 0:
                        mask[:] = False
                    else:
                        chosen = np.nonzero(mask)[0]
                        if chosen.size > allowed:
                            # Keep the earliest draws in active order, as
                            # the reference truncation does.
                            mask[chosen[allowed:]] = False
                if mask.any():
                    departed = ids[mask]
                    self._departed[departed] = round_index
                    self._departures += departed.size
                    self._churn_events += departed.size
                    self._active_ids = ids[~mask]
                    self._forget(departed)
                    if arrival.kind == "whitewash":
                        eligible = departed[
                            self._g_whitewash[self._gcode[departed]]
                        ]
                        if eligible.size:
                            rejoin = eligible[
                                self._rng.random(eligible.size) < arrival.rate
                            ]
                            if rejoin.size:
                                self._spawn_batch(
                                    self._capacity[rejoin],
                                    self._bcode[rejoin],
                                    self._gcode[rejoin],
                                    _COHORT_WHITEWASH,
                                    round_index,
                                )

        if arrival.kind == "poisson":
            if round_index >= arrival.start:
                count = self._admissible(int(self._rng.poisson(arrival.rate)))
                self._spawn_arrivals(count, round_index)
        elif arrival.kind == "flash":
            count = self._admissible(arrival.flash_count_for_round(round_index))
            self._spawn_arrivals(count, round_index)

    def _population_step_fixed(self, round_index: int) -> None:
        dynamics = self._dynamics
        churn_rate = self.config.churn_rate
        if dynamics is not None:
            for peer_ids, bcode, gcode in self._shifts_by_round.get(
                round_index, ()
            ):
                self._bcode[peer_ids] = bcode
                if gcode is not None:
                    self._gcode[peer_ids] = gcode
            extra = dynamics.extra_rate(round_index)
            if extra > 0.0:
                churn_rate = min(churn_rate + extra, 1.0 - 1e-9)

        ids = self._active_ids
        churned = _EMPTY_I
        if churn_rate > 0.0:
            mask = self._rng.random(ids.size) < churn_rate
            churned = ids[mask]
            if churned.size:
                self._apply_replacement(churned, round_index)
        if dynamics is not None:
            fraction = dynamics.correlated_fraction(round_index)
            if fraction > 0.0:
                count = round(fraction * ids.size)
                if count < 1:
                    count = 1
                pool = ids[~np.isin(ids, churned)] if churned.size else ids
                if pool.size:
                    if count > pool.size:
                        count = pool.size
                    batch = self._rng.choice(pool, size=count, replace=False)
                    self._apply_replacement(batch, round_index)

    # ------------------------------------------------------------------ #
    # vectorised sampling helpers
    # ------------------------------------------------------------------ #
    def _sample_others(self, rows: np.ndarray, size: int, n: int) -> np.ndarray:
        """Per row, ``size`` distinct locals from [0, n) excluding the row.

        Column-by-column rejection resampling: each accepted column value is
        uniform over the remaining eligible locals, which is exactly
        sampling without replacement.
        """
        out = np.empty((rows.size, size), dtype=np.int64)
        for column in range(size):
            draw = self._rng.integers(0, n, size=rows.size)
            while True:
                bad = draw == rows
                if column:
                    bad |= (draw[:, None] == out[:, :column]).any(axis=1)
                redo = np.nonzero(bad)[0]
                if redo.size == 0:
                    break
                draw[redo] = self._rng.integers(0, n, size=redo.size)
            out[:, column] = draw
        return out

    def _draw_requests(
        self,
        ids: np.ndarray,
        n: int,
        n_partners: np.ndarray,
        partner_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Next round's pending ``(target, requester)`` pairs.

        Each peer requests ``requests_per_round`` distinct targets drawn
        uniformly from the active peers that are neither itself nor one of
        its current partners.
        """
        requests = self.config.requests_per_round
        eligible = (n - 1) - n_partners
        rows = np.nonzero(eligible > 0)[0]
        if rows.size == 0:
            return _EMPTY_I, _EMPTY_I
        targets: List[np.ndarray] = []
        requesters: List[np.ndarray] = []
        quota = np.minimum(requests, eligible[rows])
        max_quota = int(quota.max())
        chosen = np.full((rows.size, max_quota), -1, dtype=np.int64)
        for column in range(max_quota):
            live = np.nonzero(quota > column)[0]
            if live.size == 0:
                break
            draw = self._rng.integers(0, n, size=live.size)
            row_locals = rows[live]
            for _ in range(_MAX_RESAMPLE_ROUNDS):
                bad = draw == row_locals
                bad |= _member(
                    _pair_keys(ids[row_locals], ids[draw]), partner_keys
                )
                if column:
                    bad |= (draw[:, None] == chosen[live, :column]).any(axis=1)
                redo = np.nonzero(bad)[0]
                if redo.size == 0:
                    break
                draw[redo] = self._rng.integers(0, n, size=redo.size)
            else:
                # Tiny eligible pools: finish the stragglers exactly.
                partner_set = set(partner_keys.tolist())
                for local_idx in np.nonzero(bad)[0]:
                    row_local = int(row_locals[local_idx])
                    taken = set(chosen[live[local_idx], :column].tolist())
                    options = [
                        t
                        for t in range(n)
                        if t != row_local
                        and t not in taken
                        and (int(ids[row_local]) << _KEY_SHIFT)
                        | int(ids[t]) not in partner_set
                    ]
                    draw[local_idx] = self._py_rng.choice(options)
            chosen[live, column] = draw
            targets.append(ids[draw])
            requesters.append(ids[row_locals])
        if not targets:
            return _EMPTY_I, _EMPTY_I
        return np.concatenate(targets), np.concatenate(requesters)

    # ------------------------------------------------------------------ #
    # round processing
    # ------------------------------------------------------------------ #
    def _run_round(self, round_index: int) -> None:
        prof = self.profiler
        prof.tick()
        if self._variable:
            self._population_step_variable(round_index)
        else:
            self._population_step_fixed(round_index)
        prof.lap("churn")

        config = self.config
        ids = self._active_ids
        n = ids.size
        self._active_counts.append(n)
        measuring = round_index >= config.warmup_rounds
        if measuring and not self._legacy_records:
            self._presence[ids] += 1

        pos = self._pos
        pos[ids] = self._iota[:n]

        bcodes = self._bcode[ids]
        window = self._b_window[bcodes]
        k = self._b_k[bcodes]

        # ---- candidate edges (dimension C) ---------------------------- #
        # Both history rounds are kept pair-key-sorted, so the candidate
        # aggregation is a stable merge + segment reduce (timsort's best
        # case on two sorted runs) — no unique/scatter indirection, and
        # the merged keys come out grouped by receiver for the kernels.
        prev_keys, prev_amt = self._hist_prev
        old_keys, old_amt = self._hist_old
        if old_keys.size:
            in_window = self._b_window[self._bcode[old_keys >> _KEY_SHIFT]] == 2
            old_keys = old_keys[in_window]
            old_amt = old_amt[in_window]
        cand_keys, cand_val = merge_sorted_histories(
            prev_keys, prev_amt, old_keys, old_amt
        )
        cand_recv = cand_keys >> _KEY_SHIFT
        cand_send = cand_keys & _KEY_MASK
        prof.lap("decision.candidates")

        # ---- ranking (I) and partner selection ------------------------ #
        # The candidate edges arrive grouped by receiver (key-sorted), so
        # partner cutoffs are a grouped partial selection: only each
        # receiver's top-``k`` slice is ever fully sorted.
        n_edges = cand_recv.size
        if n_edges:
            edge_local = pos[cand_recv]
            rate = cand_val / window[edge_local]
            rank = self._b_rank[self._bcode[cand_recv]]
            primary = np.zeros(n_edges)
            secondary = None
            m = rank == 0  # fastest: highest rate first
            primary[m] = -rate[m]
            m = rank == 1  # slowest
            primary[m] = rate[m]
            m = rank == 2  # proximity to own per-slot rate
            if m.any():
                target = (
                    self._capacity[cand_recv[m]]
                    / self._b_slots[self._bcode[cand_recv[m]]]
                )
                primary[m] = np.abs(rate[m] - target)
            m = rank == 3  # adaptive: proximity to aspiration
            if m.any():
                primary[m] = np.abs(
                    rate[m] - self._aspiration[cand_recv[m]]
                )
            if self._has_loyal:
                m = rank == 4  # loyal: longest active streak, then fastest
                if m.any():
                    secondary = np.zeros(n_edges)
                    primary[m] = -self._streak_lookup(
                        cand_recv[m], cand_send[m]
                    )
                    secondary[m] = -rate[m]
            tie = self._rng.random(n_edges)
            m = rank == 5  # random: rank by the tie draw itself
            if m.any():
                primary[m] = tie[m]
            starts, seg_widths = segment_bounds(cand_recv)
            selected = grouped_topk(
                starts, seg_widths, k[edge_local[starts]],
                primary, tie, secondary, self._scratch,
            )
            part_recv = cand_recv[selected]
            part_dst = cand_send[selected]
            part_val = cand_val[selected]
            partner_keys = np.sort(cand_keys[selected])
        else:
            part_recv = _EMPTY_I
            part_dst = _EMPTY_I
            part_val = _EMPTY_F
            partner_keys = _EMPTY_I

        n_partners = np.bincount(pos[part_recv], minlength=n)
        prof.lap("decision.rank")

        # ---- stranger policy (B) -------------------------------------- #
        spol = self._b_spol[bcodes]
        h = self._b_h[bcodes]
        coop_now = np.zeros(n, dtype=bool)
        m = spol == 1  # periodic
        if m.any():
            coop_now[m] = (round_index % self._b_period[bcodes[m]]) == 0
        m = spol == 2  # when_needed
        if m.any():
            coop_now[m] = n_partners[m] < k[m]
        defect = spol == 3

        pend_tgt, pend_req = self._pending
        pool_peer = _EMPTY_I
        pool_cand = _EMPTY_I
        pool_isreq = _EMPTY_F
        if pend_tgt.size:
            pend_local = pos[pend_tgt]
            from_pending = coop_now[pend_local]
            if from_pending.any():
                pool_peer = pend_tgt[from_pending]
                pool_cand = pend_req[from_pending]
                pool_isreq = np.ones(pool_peer.size)
        discovery = config.discovery_per_round
        coop_rows = np.nonzero(coop_now)[0]
        if discovery > 0 and n > 1 and coop_rows.size:
            sample_size = min(discovery, n - 1)
            sampled = self._sample_others(coop_rows, sample_size, n)
            sampled_peer = np.repeat(ids[coop_rows], sample_size)
            sampled_cand = ids[sampled.ravel()]
            pool_peer = np.concatenate([pool_peer, sampled_peer])
            pool_cand = np.concatenate([pool_cand, sampled_cand])
            pool_isreq = np.concatenate(
                [pool_isreq, np.zeros(sampled_peer.size)]
            )

        if pool_peer.size:
            # Current partners are a subset of the candidate set, so one
            # membership probe against ``cand_keys`` excludes both.
            pool_keys = _pair_keys(pool_peer, pool_cand)
            keep = ~_member(pool_keys, cand_keys)
            pool_keys = pool_keys[keep]
            pool_isreq = pool_isreq[keep]
        if pool_peer.size and pool_keys.size:
            unique_keys, inverse = np.unique(pool_keys, return_inverse=True)
            is_requester = (
                np.bincount(
                    inverse, weights=pool_isreq, minlength=unique_keys.size
                )
                > 0
            )
            stranger_peer = unique_keys >> _KEY_SHIFT
            stranger_cand = unique_keys & _KEY_MASK
            tie = self._rng.random(unique_keys.size)
            # Requesters sort strictly before discoveries; folding the
            # flag into the tie (tie < 1) gives one exact composite key.
            primary = np.where(is_requester, 0.0, 1.0) + tie
            starts, seg_widths = segment_bounds(stranger_peer)
            selected = grouped_topk(
                starts, seg_widths, h[pos[stranger_peer[starts]]],
                primary, tie, None, self._scratch,
            )
            coop_peer = stranger_peer[selected]
            coop_dst = stranger_cand[selected]
        else:
            coop_peer = _EMPTY_I
            coop_dst = _EMPTY_I
        n_coop = np.bincount(pos[coop_peer], minlength=n)

        # Defect: explicitly refuse up to max(1, h) surviving requesters.
        refuse_peer = _EMPTY_I
        refuse_dst = _EMPTY_I
        if pend_tgt.size and defect.any():
            from_pending = defect[pos[pend_tgt]]
            if from_pending.any():
                rf_peer = pend_tgt[from_pending]
                rf_cand = pend_req[from_pending]
                rf_keys = _pair_keys(rf_peer, rf_cand)
                keep = ~_member(rf_keys, cand_keys)
                rf_peer = rf_peer[keep]
                rf_cand = rf_cand[keep]
                if rf_peer.size:
                    rf_local = pos[rf_peer]
                    tie = self._rng.random(rf_peer.size)
                    order = np.lexsort((tie, rf_local))
                    sorted_local = rf_local[order]
                    counts = np.bincount(rf_local, minlength=n)
                    within = (
                        np.arange(rf_peer.size, dtype=np.int64)
                        - _group_offsets(counts)[sorted_local]
                    )
                    cutoff = np.maximum(h, 1)
                    selected = order[within < cutoff[sorted_local]]
                    refuse_peer = rf_peer[selected]
                    refuse_dst = rf_cand[selected]
                    self._explicit_refusals += refuse_peer.size
        prof.lap("decision.strangers")

        # ---- allocation (R) ------------------------------------------- #
        active_slots = n_partners + n_coop
        cap_active = self._capacity[ids]
        per_slot = np.zeros(n)
        has_slots = active_slots > 0
        per_slot[has_slots] = cap_active[has_slots] / active_slots[has_slots]
        stranger_budget = np.minimum(
            per_slot * n_coop, config.stranger_bandwidth_cap * cap_active
        )
        coop_share = np.zeros(n)
        has_coop = n_coop > 0
        coop_share[has_coop] = stranger_budget[has_coop] / n_coop[has_coop]
        coop_amt = coop_share[pos[coop_peer]]

        part_amt = np.zeros(part_recv.size)
        if part_recv.size:
            part_local = pos[part_recv]
            alloc = self._b_alloc[self._bcode[part_recv]]
            m = alloc == 0  # equal_split
            part_amt[m] = per_slot[part_local[m]]
            m = alloc == 1  # prop_share
            if m.any():
                contrib_total = np.bincount(
                    part_local[m], weights=part_val[m], minlength=n
                )
                edge_total = contrib_total[part_local[m]]
                budget = per_slot[part_local[m]] * n_partners[part_local[m]]
                share = np.zeros(edge_total.size)
                positive = edge_total > 0
                share[positive] = (
                    budget[positive]
                    * part_val[m][positive]
                    / edge_total[positive]
                )
                part_amt[m] = share
            # alloc == 2 (freeride): zero-amount interactions.
        prof.lap("allocation")

        # ---- transfer phase ------------------------------------------- #
        t_src = np.concatenate([coop_peer, part_recv, refuse_peer])
        t_dst = np.concatenate([coop_dst, part_dst, refuse_dst])
        t_amt = np.concatenate(
            [coop_amt, part_amt, np.zeros(refuse_peer.size)]
        )

        # Store the round key-sorted so next round's candidate merge and
        # the grouped kernels consume it directly.
        hist_keys = _pair_keys(t_dst, t_src)
        horder = np.argsort(hist_keys)
        self._hist_old = self._hist_prev
        self._hist_prev = (hist_keys[horder], t_amt[horder])
        prof.lap("transfer.history")

        gave = t_amt > 0.0
        any_gave = bool(gave.any())
        if measuring and any_gave:
            # Accumulate in active-position space and scatter once —
            # per-round cost tracks the live population, not the
            # monotonically growing id bound.
            self._m_down[ids] += np.bincount(
                pos[t_dst[gave]], weights=t_amt[gave], minlength=n
            )
            self._m_up[ids] += np.bincount(
                pos[t_src[gave]], weights=t_amt[gave], minlength=n
            )
        received = np.bincount(pos[t_dst], weights=t_amt, minlength=n)
        smoothing = config.aspiration_smoothing
        self._aspiration[ids] = (1.0 - smoothing) * self._aspiration[
            ids
        ] + smoothing * (received / self._b_slots[bcodes])
        prof.lap("transfer.accounting")

        if self._has_loyal:
            if any_gave:
                giver_dst = t_dst[gave]
                giver_src = t_src[gave]
                streak = (
                    self._streak_lookup(giver_dst, giver_src) + 1
                ).astype(np.int64)
                streak_keys = hist_keys[gave]
                order = np.argsort(streak_keys)
                self._streak = (streak_keys[order], streak[order])
            else:
                self._streak = (_EMPTY_I, _EMPTY_I)
        prof.lap("transfer.streaks")

        if config.requests_per_round > 0 and n > 1:
            self._pending = self._draw_requests(ids, n, n_partners, partner_keys)
        else:
            self._pending = (_EMPTY_I, _EMPTY_I)
        prof.lap("transfer.requests")

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute all rounds and return the :class:`SimulationResult`."""
        for round_index in range(self.config.rounds):
            self._run_round(round_index)

        self.profiler.tick()
        try:
            return self._build_result()
        finally:
            self.profiler.lap("metrics")

    def _build_result(self) -> SimulationResult:
        legacy = self._legacy_records
        count = self._next_id
        # Bulk ``.tolist()`` conversions: element-at-a-time numpy scalar
        # boxing dominated result building at 100k+ identities.
        g_labels = self._g_labels
        b_labels = self._b_labels
        groups = self._gcode[:count].tolist()
        labels = self._bcode[:count].tolist()
        caps = self._capacity[:count].tolist()
        downs = self._m_down[:count].tolist()
        ups = self._m_up[:count].tolist()
        # Positional construction — the frozen dataclass pays an
        # ``object.__setattr__`` per field either way, but skipping the
        # keyword machinery is ~30% cheaper at 100k+ records.  Argument
        # order mirrors the PeerRecord field order.
        if legacy:
            records: List[PeerRecord] = [
                PeerRecord(pid, g_labels[gc], cap, b_labels[bc], down, up)
                for pid, (gc, cap, bc, down, up) in enumerate(
                    zip(groups, caps, labels, downs, ups)
                )
            ]
        else:
            cohorts = self._cohort[:count].tolist()
            joins = self._joined[:count].tolist()
            departs = self._departed[:count].tolist()
            presence = self._presence[:count].tolist()
            records = [
                PeerRecord(
                    pid, g_labels[gc], cap, b_labels[bc], down, up,
                    _COHORT_LABELS[cohort], joined,
                    departed if departed >= 0 else None, present,
                )
                for pid, (
                    gc, cap, bc, down, up, cohort, joined, departed, present,
                ) in enumerate(
                    zip(
                        groups, caps, labels, downs, ups,
                        cohorts, joins, departs, presence,
                    )
                )
            ]
        return SimulationResult(
            config=self.config,
            records=records,
            rounds_executed=self.config.rounds,
            churn_events=self._churn_events,
            total_explicit_refusals=self._explicit_refusals,
            active_counts=None if legacy else tuple(self._active_counts),
            total_arrivals=self._arrivals,
            total_departures=self._departures,
        )
