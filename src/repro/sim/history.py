"""Per-peer interaction history.

The simulation model states that "a peer also maintains a short history of
actions by others".  :class:`InteractionHistory` is that short history: for
every recent round it records, per sender, the amount of bandwidth received
(including explicit zero-amount responses such as a stranger-policy refusal
or a freerider's empty allocation — an interaction the receiving peer can
observe and react to, which is what makes rankings like *Sort Slowest*
behave the way Section 4.4 describes).

Only a bounded number of recent rounds is retained, which keeps memory and
lookup costs constant regardless of simulation length.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["InteractionHistory"]


class InteractionHistory:
    """Bounded per-round record of interactions observed by one peer.

    Parameters
    ----------
    max_rounds:
        Number of most-recent rounds retained.  The candidate-list policies
        need at most two rounds (TF2T); loyalty tracking is maintained
        separately by the engine, so a small window suffices.
    """

    __slots__ = ("max_rounds", "_rounds")

    def __init__(self, max_rounds: int = 3):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = int(max_rounds)
        self._rounds: "OrderedDict[int, Dict[int, float]]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, round_index: int, sender: int, amount: float) -> None:
        """Record that ``sender`` delivered ``amount`` to this peer in ``round_index``.

        Amounts may be zero (an observed refusal); negative amounts are
        rejected.  Multiple records from the same sender in the same round
        accumulate.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        bucket = self._rounds.get(round_index)
        if bucket is None:
            bucket = {}
            self._rounds[round_index] = bucket
            self._trim()
        bucket[sender] = bucket.get(sender, 0.0) + float(amount)

    def _trim(self) -> None:
        while len(self._rounds) > self.max_rounds:
            self._rounds.popitem(last=False)

    def round_bucket(self, round_index: int) -> Optional[Dict[int, float]]:
        """Read-only view of the ``sender -> amount`` record for ``round_index``.

        Returns ``None`` when nothing was recorded.  Unlike
        :meth:`interactions_in_round` this does not copy; callers must not
        mutate the returned dict.
        """
        return self._rounds.get(round_index)

    def window_buckets(self, current_round: int, window: int) -> List[Dict[int, float]]:
        """The non-empty per-round buckets covering the candidate window.

        Buckets are returned oldest-first for rounds
        ``[current_round - window, current_round - 1]``; rounds with no
        recorded interaction are omitted (they contribute nothing to any
        windowed sum).  Used by the ranking and allocation hot paths to
        resolve the window once instead of per candidate.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        rounds = self._rounds
        return [
            bucket
            for round_index in range(current_round - window, current_round)
            if (bucket := rounds.get(round_index))
        ]

    def forget_peer(self, peer_id: int) -> None:
        """Remove every record about ``peer_id`` (used when a peer churns out)."""
        for bucket in self._rounds.values():
            bucket.pop(peer_id, None)

    def forget_peers(self, peer_ids: Iterable[int]) -> None:
        """Remove every record about each id in ``peer_ids`` in one sweep.

        Equivalent to calling :meth:`forget_peer` per id but touching each
        round bucket only once — the shape the variable-population engine
        needs when a whole batch of identities departs together.
        """
        ids = tuple(peer_ids)
        if not ids:
            return
        for bucket in self._rounds.values():
            for peer_id in ids:
                bucket.pop(peer_id, None)

    def clear(self) -> None:
        """Drop all history (a freshly joined peer)."""
        self._rounds.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def rounds_recorded(self) -> List[int]:
        """The round indices currently retained, oldest first."""
        return list(self._rounds.keys())

    def senders_in_window(self, current_round: int, window: int) -> Set[int]:
        """Peers observed interacting in rounds ``[current_round - window, current_round - 1]``.

        This is the candidate list of the TFT (window=1) and TF2T (window=2)
        policies, evaluated at the start of ``current_round``.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        rounds = self._rounds
        senders: Set[int] = set()
        for round_index in range(current_round - window, current_round):
            bucket = rounds.get(round_index)
            if bucket:
                senders.update(bucket.keys())
        return senders

    def amount_from(self, sender: int, round_index: int) -> float:
        """Amount received from ``sender`` in ``round_index`` (0.0 if none recorded)."""
        bucket = self._rounds.get(round_index)
        if not bucket:
            return 0.0
        return bucket.get(sender, 0.0)

    def received_in_window(self, sender: int, current_round: int, window: int) -> float:
        """Total amount received from ``sender`` over the window before ``current_round``."""
        rounds = self._rounds
        total = 0.0
        for round_index in range(current_round - window, current_round):
            bucket = rounds.get(round_index)
            if bucket:
                total += bucket.get(sender, 0.0)
        return total

    def observed_rate(self, sender: int, current_round: int, window: int) -> float:
        """Average per-round amount received from ``sender`` over the window."""
        if window < 1:
            raise ValueError("window must be >= 1")
        return self.received_in_window(sender, current_round, window) / window

    def total_received(self, round_index: int) -> float:
        """Total amount received (from everyone) in ``round_index``."""
        bucket = self._rounds.get(round_index)
        if not bucket:
            return 0.0
        return sum(bucket.values())

    def all_known_peers(self) -> Set[int]:
        """Every peer id appearing anywhere in the retained window."""
        known: Set[int] = set()
        for bucket in self._rounds.values():
            known.update(bucket.keys())
        return known

    def interactions_in_round(self, round_index: int) -> Dict[int, float]:
        """A copy of the ``sender -> amount`` record for ``round_index``."""
        return dict(self._rounds.get(round_index, {}))

    def __len__(self) -> int:
        return len(self._rounds)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"InteractionHistory(rounds={list(self._rounds.keys())})"
