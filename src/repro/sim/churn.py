"""Churn process: peers leaving and being replaced by fresh peers.

Section 4.4 of the paper checks that its performance conclusions survive
churn rates of 0.01 and 0.1 per round.  The churn model here is the simplest
one consistent with that experiment: each round, every peer independently
departs with probability ``churn_rate`` and is immediately replaced by a new
peer (same protocol group, freshly sampled or retained upload capacity, empty
history).  Other peers forget everything they knew about the departed
identity, exactly as if a new node had joined under a new identity.

On top of that per-round model the scenario subsystem layers *correlated*
churn (:func:`apply_correlated_churn`): an exact fraction of the swarm
replaced together in one round, modelling flash crowds of newcomers and
correlated failures rather than independent departures.

The variable-population engine replaces the identity-swap model with *true*
arrivals and departures: :func:`apply_true_departures` removes identities
from a mutable active set for good, and :func:`sample_poisson` drives the
Poisson arrival stream.  Both consume the run's single random generator in
a pinned order, so variable-population runs stay deterministic per seed.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.sim.bandwidth import BandwidthDistribution
from repro.sim.peer import PeerState

__all__ = [
    "MAX_POISSON_RATE",
    "apply_churn",
    "apply_correlated_churn",
    "apply_true_departures",
    "sample_poisson",
]


def _replace_and_forget(
    peers: Sequence[PeerState],
    churned: Iterable[int],
    round_index: int,
    rng: random.Random,
    bandwidth: BandwidthDistribution,
    resample_capacity: bool,
) -> None:
    """Reset the ``churned`` identities and erase them from everyone else.

    Iterates peers in id order, resampling capacities as it reaches each
    churned peer — the exact draw order the seed implementation used, which
    the golden-equivalence suite pins for the legacy path.
    """
    churned_set = set(churned)
    for peer in peers:
        if peer.peer_id in churned_set:
            if resample_capacity:
                peer.upload_capacity = bandwidth.sample(rng)
            peer.reset_for_rejoin(round_index)
        else:
            # Everyone else forgets the departed identities.  (Kept as
            # per-id forget_peer calls: this function is shared with the
            # frozen reference engine's snapshot history class.)
            for gone in churned_set:
                peer.history.forget_peer(gone)
                peer.loyalty.pop(gone, None)
                peer.pending_requests.discard(gone)


def apply_churn(
    peers: Sequence[PeerState],
    churn_rate: float,
    round_index: int,
    rng: random.Random,
    bandwidth: BandwidthDistribution,
    resample_capacity: bool = True,
) -> List[int]:
    """Apply one round of independent churn to ``peers`` in place.

    Parameters
    ----------
    peers:
        All peers in the simulation.
    churn_rate:
        Per-peer departure probability for this round.
    round_index:
        Current round (recorded as the replacement peer's join round).
    rng:
        Random generator driving departures and capacity resampling.
    bandwidth:
        Distribution used to draw the replacement peer's upload capacity when
        ``resample_capacity`` is true.
    resample_capacity:
        Whether the replacement draws a fresh capacity (a genuinely new node)
        or inherits the old one (pure session reset).

    Returns
    -------
    list of int
        The peer ids that churned this round.
    """
    if not 0.0 <= churn_rate < 1.0:
        raise ValueError("churn_rate must be in [0, 1)")
    if churn_rate == 0.0:
        return []

    churned: List[int] = []
    for peer in peers:
        if rng.random() < churn_rate:
            churned.append(peer.peer_id)

    if not churned:
        return []

    _replace_and_forget(
        peers, churned, round_index, rng, bandwidth, resample_capacity
    )
    return churned


def apply_correlated_churn(
    peers: Sequence[PeerState],
    fraction: float,
    round_index: int,
    rng: random.Random,
    bandwidth: BandwidthDistribution,
    resample_capacity: bool = True,
    exclude: Iterable[int] = (),
) -> List[int]:
    """Replace an exact ``fraction`` of ``peers`` together, in place.

    Unlike :func:`apply_churn`, departures are one correlated batch: exactly
    ``round(fraction * len(peers))`` distinct peers (at least one, when the
    fraction is positive) are drawn without replacement and replaced
    simultaneously — a flash crowd of fresh identities or a correlated
    failure, depending on interpretation.  Replacement semantics match
    :func:`apply_churn` exactly.

    ``exclude`` removes peers from the draw (the engine passes the ids that
    already churned independently this round, so one round never replaces —
    or counts — the same slot twice); the batch size is still relative to
    the full population, clamped to the eligible pool.

    Returns the churned peer ids (in sampling order).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if fraction == 0.0 or not peers:
        return []

    count = round(fraction * len(peers))
    if count < 1:
        count = 1
    exclude_set = set(exclude)
    if exclude_set:
        pool = [peer.peer_id for peer in peers if peer.peer_id not in exclude_set]
    else:
        pool = [peer.peer_id for peer in peers]
    if not pool:
        return []
    if count > len(pool):
        count = len(pool)
    churned = rng.sample(pool, count)
    _replace_and_forget(
        peers, churned, round_index, rng, bandwidth, resample_capacity
    )
    return churned


# ---------------------------------------------------------------------- #
# variable-population primitives
# ---------------------------------------------------------------------- #
#: Above this rate ``math.exp(-lam)`` underflows to 0.0 and Knuth's method
#: would silently return biased counts; reject instead of miscounting.
MAX_POISSON_RATE = 700.0


def sample_poisson(rng: random.Random, lam: float) -> int:
    """One Poisson(``lam``) draw from ``rng`` (Knuth's multiplication method).

    Consumes one uniform draw per unit of the returned count plus one, so
    the stream stays deterministic per seed.  Suitable for the per-round
    arrival intensities used here (lambda up to a few hundred); rates large
    enough to underflow ``exp(-lam)`` are rejected rather than silently
    undercounted.
    """
    if lam < 0.0:
        raise ValueError("lam must be >= 0")
    if lam == 0.0:
        return 0
    if lam > MAX_POISSON_RATE:
        raise ValueError(
            f"lam must be <= {MAX_POISSON_RATE:g} (exp(-lam) underflows and "
            "Knuth's method would return biased counts)"
        )
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def apply_true_departures(
    active: List[PeerState],
    rate: float,
    round_index: int,
    rng: random.Random,
    min_active: int = 2,
    extra_rates: Optional[Mapping[str, float]] = None,
) -> List[PeerState]:
    """Apply one round of *true* departures to the mutable ``active`` list.

    Each active peer independently departs with probability ``rate`` (one
    uniform draw per active peer, in list order — the same draw pattern as
    :func:`apply_churn`).  ``extra_rates`` adds a per-group surcharge to
    that probability — *targeted* identity churn, e.g. a colluder clique
    deliberately cycling identities — without changing the draw pattern:
    still exactly one uniform draw per active peer.  Departing identities
    are removed from ``active`` for good: survivors forget them (history,
    loyalty, pending requests) and the departed peers are marked with their
    departure round.  Once removals would push the active count below
    ``min_active``, the remaining departures of the round are suppressed
    (the swarm keeps a viable core).

    Returns the departed peers, in id order of their draw.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    if extra_rates:
        for group, extra in extra_rates.items():
            if not 0.0 <= extra < 1.0 or not rate + extra < 1.0:
                raise ValueError(
                    f"extra departure rate for group {group!r} must keep the "
                    f"combined rate in [0, 1), got {rate} + {extra}"
                )
    elif rate == 0.0:
        return []
    if not active:
        return []

    departing: List[PeerState] = []
    if extra_rates:
        for peer in active:
            if rng.random() < rate + extra_rates.get(peer.group, 0.0):
                departing.append(peer)
    else:
        for peer in active:
            if rng.random() < rate:
                departing.append(peer)
    if not departing:
        return []

    allowed = len(active) - min_active
    if allowed <= 0:
        return []
    if len(departing) > allowed:
        del departing[allowed:]

    departed_ids = {peer.peer_id for peer in departing}
    for peer in departing:
        peer.depart(round_index)
    active[:] = [peer for peer in active if peer.peer_id not in departed_ids]
    for peer in active:
        peer.history.forget_peers(departed_ids)
        loyalty = peer.loyalty
        if loyalty:
            for gone in departed_ids:
                loyalty.pop(gone, None)
        peer.pending_requests.difference_update(departed_ids)
    return departing
