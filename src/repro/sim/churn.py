"""Churn process: peers leaving and being replaced by fresh peers.

Section 4.4 of the paper checks that its performance conclusions survive
churn rates of 0.01 and 0.1 per round.  The churn model here is the simplest
one consistent with that experiment: each round, every peer independently
departs with probability ``churn_rate`` and is immediately replaced by a new
peer (same protocol group, freshly sampled or retained upload capacity, empty
history).  Other peers forget everything they knew about the departed
identity, exactly as if a new node had joined under a new identity.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.sim.bandwidth import BandwidthDistribution
from repro.sim.peer import PeerState

__all__ = ["apply_churn"]


def apply_churn(
    peers: Sequence[PeerState],
    churn_rate: float,
    round_index: int,
    rng: random.Random,
    bandwidth: BandwidthDistribution,
    resample_capacity: bool = True,
) -> List[int]:
    """Apply one round of churn to ``peers`` in place.

    Parameters
    ----------
    peers:
        All peers in the simulation.
    churn_rate:
        Per-peer departure probability for this round.
    round_index:
        Current round (recorded as the replacement peer's join round).
    rng:
        Random generator driving departures and capacity resampling.
    bandwidth:
        Distribution used to draw the replacement peer's upload capacity when
        ``resample_capacity`` is true.
    resample_capacity:
        Whether the replacement draws a fresh capacity (a genuinely new node)
        or inherits the old one (pure session reset).

    Returns
    -------
    list of int
        The peer ids that churned this round.
    """
    if not 0.0 <= churn_rate < 1.0:
        raise ValueError("churn_rate must be in [0, 1)")
    if churn_rate == 0.0:
        return []

    churned: List[int] = []
    for peer in peers:
        if rng.random() < churn_rate:
            churned.append(peer.peer_id)

    if not churned:
        return []

    churned_set = set(churned)
    for peer in peers:
        if peer.peer_id in churned_set:
            if resample_capacity:
                peer.upload_capacity = bandwidth.sample(rng)
            peer.reset_for_rejoin(round_index)
        else:
            # Everyone else forgets the departed identities.
            for gone in churned_set:
                peer.history.forget_peer(gone)
                peer.loyalty.pop(gone, None)
                peer.pending_requests.discard(gone)
    return churned
