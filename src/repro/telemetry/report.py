"""Renderers for the two observability CLIs: live ``status``, post-hoc ``trace``.

``render_status`` is a point-in-time view of a running spool — workers and
their heartbeat ages, queue depth, and (when a telemetry directory is
present) the aggregated cross-process metrics: completion rates, dedupe
hits, latency quantiles.

``render_trace`` reconstructs job timelines from the merged JSONL event
log: every job's ``enqueue -> claim -> probe -> execute -> store ->
complete`` chain (split into *attempts* at each ``claim``, so a
dead-worker re-queue shows as attempt 1 ending in ``requeue`` and attempt
2 carrying the re-execution), plus a critical-path summary decomposing
where the submission's wall-clock actually went: queue wait vs execution
vs store vs scheduler slack.  Execute spans that carry an attached engine
profile contribute a per-phase roll-up, so service-level and engine-level
time share one report.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.events import JOB_EVENTS, RECOVERY_EVENTS
from repro.telemetry.metrics import Histogram, read_metrics

__all__ = [
    "job_timelines",
    "render_status",
    "render_trace",
    "trace_summary",
]


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _fmt_age(value: float) -> str:
    if value == float("inf"):
        return "never"
    return _fmt_seconds(value) + " ago"


# ---------------------------------------------------------------------- #
# trace reconstruction
# ---------------------------------------------------------------------- #
def job_timelines(events: Sequence[dict]) -> Dict[str, List[dict]]:
    """Job-scoped events grouped by fingerprint, in merged (time) order.

    Worker lifecycle events carry no fingerprint and are excluded; the
    grouping preserves the global sort, so each job's list *is* its
    timeline.
    """
    timelines: Dict[str, List[dict]] = {}
    for record in events:
        fingerprint = record.get("fp")
        if fingerprint is None:
            continue
        timelines.setdefault(fingerprint, []).append(record)
    return timelines


def _attempts(timeline: Sequence[dict]) -> List[List[dict]]:
    """Split one job's timeline into attempts (a ``claim`` opens each)."""
    attempts: List[List[dict]] = []
    current: Optional[List[dict]] = None
    for record in timeline:
        if record["event"] == "claim":
            current = [record]
            attempts.append(current)
        elif current is not None and record["event"] not in ("submit", "enqueue"):
            current.append(record)
    return attempts


def trace_summary(events: Sequence[dict]) -> dict:
    """Aggregate accounting over a merged event list (render-ready numbers)."""
    timelines = job_timelines(events)
    event_counts: Dict[str, int] = {}
    for record in events:
        event_counts[record["event"]] = event_counts.get(record["event"], 0) + 1

    queue_wait = Histogram()
    execute = Histogram()
    store = Histogram()
    requeue_reasons: Dict[str, int] = {}
    phase_seconds: Dict[str, float] = {}
    spans: List[float] = []
    span_queue = span_execute = span_store = 0.0

    for record in events:
        event = record["event"]
        if event == "claim" and "queue_wait" in record:
            queue_wait.observe(float(record["queue_wait"]))
        elif event == "execute" and "duration" in record:
            execute.observe(float(record["duration"]))
            profile = record.get("profile")
            if isinstance(profile, Mapping):
                for name, value in profile.get("phases", {}).items():
                    phase_seconds[name] = phase_seconds.get(name, 0.0) + float(value)
        elif event == "store" and "duration" in record:
            store.observe(float(record["duration"]))
        elif event == "requeue":
            reason = str(record.get("reason", "requeue"))
            requeue_reasons[reason] = requeue_reasons.get(reason, 0) + 1

    completed = 0
    for timeline in timelines.values():
        first_enqueue = next(
            (r for r in timeline if r["event"] == "enqueue"), None
        )
        complete = next(
            (r for r in reversed(timeline) if r["event"] == "complete"), None
        )
        if first_enqueue is None or complete is None:
            continue
        completed += 1
        spans.append(max(0.0, complete["t"] - first_enqueue["t"]))
        for record in timeline:
            event = record["event"]
            if event == "claim" and "queue_wait" in record:
                span_queue += float(record["queue_wait"])
            elif event == "execute" and "duration" in record:
                span_execute += float(record["duration"])
            elif event == "store" and "duration" in record:
                span_store += float(record["duration"])

    wall = 0.0
    if events:
        wall = max(0.0, events[-1]["t"] - events[0]["t"])
    workers = sorted(
        {
            str(record["worker"])
            for record in events
            if record["event"] == "worker.start" and "worker" in record
        }
    )
    span_total = sum(spans)
    return {
        "jobs": len(timelines),
        "completed": completed,
        "events": len(events),
        "writers": len({str(r.get("writer", "")) for r in events}),
        "workers": workers,
        "wall": wall,
        "event_counts": event_counts,
        "queue_wait": queue_wait,
        "execute": execute,
        "store": store,
        "requeue_reasons": requeue_reasons,
        "span_total": span_total,
        "span_queue": span_queue,
        "span_execute": span_execute,
        "span_store": span_store,
        "span_slack": max(0.0, span_total - span_queue - span_execute - span_store),
        "phase_seconds": dict(
            sorted(phase_seconds.items(), key=lambda kv: -kv[1])
        ),
    }


def _histogram_line(label: str, histogram: Histogram) -> str:
    return (
        f"  {label:<12} n={histogram.count:<5} mean {_fmt_seconds(histogram.mean())}"
        f"  p50 {_fmt_seconds(histogram.quantile(0.5))}"
        f"  p95 {_fmt_seconds(histogram.quantile(0.95))}"
        f"  max {_fmt_seconds(histogram.max)}"
    )


def _render_timeline(fingerprint: str, timeline: Sequence[dict]) -> List[str]:
    origin = timeline[0]["t"]
    attempts = _attempts(timeline)
    complete = next(
        (r for r in reversed(timeline) if r["event"] == "complete"), None
    )
    span = f", completed in {_fmt_seconds(complete['t'] - origin)}" if complete else ""
    lines = [
        f"job {fingerprint[:16]}  "
        f"({len(timeline)} events, {len(attempts)} attempt"
        f"{'s' if len(attempts) != 1 else ''}{span})"
    ]
    for record in timeline:
        event = record["event"]
        offset = f"+{record['t'] - origin:8.3f}s"
        detail = []
        if "worker" in record:
            detail.append(f"worker={record['worker']}")
        if event == "claim" and "queue_wait" in record:
            detail.append(f"wait={_fmt_seconds(float(record['queue_wait']))}")
        if "duration" in record:
            detail.append(f"took={_fmt_seconds(float(record['duration']))}")
        if event == "probe" and "hit" in record:
            detail.append(f"hit={record['hit']}")
        if "reason" in record:
            detail.append(f"reason={record['reason']}")
        if "attempt" in record:
            detail.append(f"attempt={record['attempt']}")
        if event == "execute" and isinstance(record.get("profile"), Mapping):
            phases = record["profile"].get("phases", {})
            if phases:
                top = max(phases.items(), key=lambda kv: kv[1])
                detail.append(f"profile:{top[0]}={_fmt_seconds(float(top[1]))}")
        if "error" in record:
            detail.append(f"error={record['error']}")
        lines.append(f"  {offset} {event:<10} {' '.join(detail)}".rstrip())
    return lines


def render_trace(events: Sequence[dict], jobs_limit: Optional[int] = 20) -> str:
    """The full ``repro trace`` rendering: summary, then per-job timelines."""
    if not events:
        return "trace: no events (is the telemetry directory right?)"
    summary = trace_summary(events)
    counts = summary["event_counts"]
    lifecycle = "  ".join(
        f"{name}={counts.get(name, 0)}" for name in JOB_EVENTS
    )
    recovery = "  ".join(
        f"{name}={counts.get(name, 0)}" for name in RECOVERY_EVENTS
    )
    lines = [
        f"trace: {summary['jobs']} jobs ({summary['completed']} completed), "
        f"{summary['events']} events from {summary['writers']} writers, "
        f"wall span {_fmt_seconds(summary['wall'])}",
        f"  lifecycle   {lifecycle}",
        f"  recovery    {recovery}",
    ]
    for reason, count in sorted(summary["requeue_reasons"].items()):
        lines.append(f"    requeue[{reason}] x{count}")
    for label, key in (("queue wait", "queue_wait"), ("execute", "execute"), ("store", "store")):
        histogram = summary[key]
        if histogram.count:
            lines.append(_histogram_line(label, histogram))
    if summary["span_total"] > 0:
        total = summary["span_total"]
        lines.append(
            "  critical path (summed enqueue->complete spans "
            f"{_fmt_seconds(total)}): "
            f"queue {summary['span_queue'] / total:.0%}, "
            f"execute {summary['span_execute'] / total:.0%}, "
            f"store {summary['span_store'] / total:.0%}, "
            f"scheduler/poll slack {summary['span_slack'] / total:.0%}"
        )
    if summary["phase_seconds"]:
        phase_total = sum(summary["phase_seconds"].values()) or 1.0
        breakdown = "  ".join(
            f"{name}={value / phase_total:.0%}"
            for name, value in summary["phase_seconds"].items()
        )
        lines.append(f"  engine phases (attached profiles): {breakdown}")

    timelines = job_timelines(events)
    shown = list(timelines.items())
    if jobs_limit is not None and len(shown) > jobs_limit:
        lines.append(
            f"timelines (first {jobs_limit} of {len(shown)} jobs; "
            f"--jobs-limit 0 for all):"
        )
        shown = shown[:jobs_limit]
    else:
        lines.append("timelines:")
    for fingerprint, timeline in shown:
        lines.extend(_render_timeline(fingerprint, timeline))
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# live status
# ---------------------------------------------------------------------- #
def render_status(
    spool,
    store=None,
    telemetry_root=None,
    liveness_timeout: float = 5.0,
    registration_grace: float = 10.0,
) -> str:
    """The ``repro status`` rendering: spool + workers + aggregated metrics.

    ``spool``/``store`` are duck-typed (a :class:`~repro.service.spool.Spool`
    and an :class:`~repro.service.store.IndexedResultStore`) so this module
    stays importable without the service package loaded.
    """
    lines = [
        f"spool: {spool.root}",
        f"  queue depth: {spool.queue_depth()} pending, "
        f"{spool.in_flight()} in flight",
    ]
    workers = spool.workers(liveness_timeout, registration_grace=registration_grace)
    alive = sum(1 for w in workers if w.alive)
    lines.append(f"workers: {alive} alive, {len(workers) - alive} dead")
    if workers:
        lines.append(f"  {'id':<32} {'pid':>8} {'heartbeat':>12} {'claimed':>8}  state")
        for info in workers:
            pid = str(info.pid) if info.pid is not None else "-"
            lines.append(
                f"  {info.worker_id:<32} {pid:>8} "
                f"{_fmt_age(info.heartbeat_age):>12} {info.claimed:>8}  "
                f"{'alive' if info.alive else 'dead'}"
            )
    if spool.stop_requested():
        lines.append("  stop sentinel raised: workers are draining")
    if store is not None:
        lines.append(f"store: {store.indexed_count()} results indexed")
    if telemetry_root is not None:
        aggregated = read_metrics(telemetry_root)
        if aggregated["writers"]:
            counters = aggregated["counters"]
            lines.append(
                f"telemetry: {telemetry_root} ({aggregated['writers']} writers)"
            )
            interesting = (
                ("executed", "worker.executed"),
                ("completed", "scheduler.completed"),
                ("dedupe skips", "worker.dedupe_skips"),
                ("store hits", "dedupe.store_hits"),
                ("requeues", "spool.requeued"),
                ("retries", "scheduler.retries"),
                ("errors", "spool.errors"),
            )
            parts = [
                f"{label} {int(counters[key])}"
                for label, key in interesting
                if key in counters
            ]
            if parts:
                lines.append("  " + "  ".join(parts))
            for label, key in (
                ("claim wait", "claim_latency_seconds"),
                ("execute", "execute_seconds"),
                ("store", "store_seconds"),
            ):
                histogram = aggregated["histograms"].get(key)
                if histogram is not None and histogram.count:
                    lines.append(_histogram_line(label, histogram))
        else:
            lines.append(f"telemetry: {telemetry_root} (no snapshots yet)")
    return "\n".join(lines)
