"""``repro.telemetry`` — structured tracing + metrics for the service layer.

One :class:`Telemetry` handle bundles the two instruments a service
process carries:

* a :class:`~repro.telemetry.events.Tracer` appending span/event records
  to its own JSONL file in the telemetry directory (merged on read — see
  :func:`~repro.telemetry.events.read_events`), and
* a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges
  and fixed-bucket histograms, periodically published as an atomic
  snapshot file for cross-process aggregation.

The handle is what gets threaded through the spool, scheduler and workers;
:data:`NULL_TELEMETRY` is its disabled twin (no files, no allocation,
method stubs), so instrumented code never branches — the
:data:`~repro.sim.profiling.NULL_PROFILER` discipline extended to the
service layer.  ``repro status`` reads the metric snapshots live;
``repro trace`` renders the merged event log post-hoc.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import Optional, Union

from repro.telemetry.events import (
    CANONICAL_EVENTS,
    JOB_EVENTS,
    NULL_TRACER,
    NullTracer,
    RECOVERY_EVENTS,
    Tracer,
    WORKER_EVENTS,
    read_events,
    trace_id,
    write_merged,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    aggregate_snapshots,
    read_metrics,
    read_snapshots,
)

__all__ = [
    "CANONICAL_EVENTS",
    "DEFAULT_BUCKETS",
    "Histogram",
    "JOB_EVENTS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetrics",
    "NullTelemetry",
    "NullTracer",
    "RECOVERY_EVENTS",
    "Telemetry",
    "Tracer",
    "WORKER_EVENTS",
    "aggregate_snapshots",
    "read_events",
    "read_metrics",
    "read_snapshots",
    "telemetry_for",
    "trace_id",
    "write_merged",
]

#: Seconds between metric-snapshot publishes from :meth:`Telemetry.flush`
#: calls that are not forced — bounds snapshot I/O regardless of job rate.
SNAPSHOT_INTERVAL = 1.0


class Telemetry:
    """A process's telemetry handle: tracer + metrics bound to a directory."""

    enabled = True

    def __init__(self, root: Union[str, Path], writer: Optional[str] = None):
        self.root = Path(root)
        self.writer = writer or f"p{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.tracer = Tracer(self.root, writer=self.writer)
        self.metrics = MetricsRegistry()
        self._last_flush = 0.0

    def emit(self, event: str, fingerprint: Optional[str] = None, **fields) -> None:
        """Shorthand for ``self.tracer.emit`` (the common call site shape)."""
        self.tracer.emit(event, fingerprint=fingerprint, **fields)

    def flush(self, force: bool = False) -> None:
        """Publish a metrics snapshot, throttled to :data:`SNAPSHOT_INTERVAL`.

        Call freely from hot-ish paths (after each job, per scheduler
        sweep); actual file writes happen at most once per interval unless
        ``force`` (worker shutdown, end of submission).
        """
        now = time.monotonic()
        if not force and now - self._last_flush < SNAPSHOT_INTERVAL:
            return
        self._last_flush = now
        self.metrics.write_snapshot(self.root, self.writer)

    def close(self) -> None:
        """Final snapshot + tracer shutdown (idempotent)."""
        try:
            self.flush(force=True)
        finally:
            self.tracer.close()

    def __getstate__(self):
        # Travels by value to worker processes (e.g. riding on a pickled
        # spool); the tracer drops its handle and the child re-opens its
        # own event file, so writers never share a file.
        state = self.__dict__.copy()
        state["_last_flush"] = 0.0
        return state

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Telemetry(root={str(self.root)!r}, writer={self.writer!r})"


class NullTelemetry(Telemetry):
    """Disabled telemetry: no directory, no files, stub methods."""

    enabled = False

    def __init__(self):
        self.root = Path(os.devnull)
        self.writer = "null"
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self._last_flush = 0.0

    def emit(self, event: str, fingerprint: Optional[str] = None, **fields) -> None:
        pass

    def flush(self, force: bool = False) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled instance — safe to hand to any number of components.
NULL_TELEMETRY = NullTelemetry()


def telemetry_for(
    root: Union[str, Path, None], writer: Optional[str] = None
) -> Telemetry:
    """A live :class:`Telemetry` for ``root``, or :data:`NULL_TELEMETRY`.

    The one-liner every entry point uses to honour an optional
    ``--telemetry DIR`` flag.
    """
    if root is None:
        return NULL_TELEMETRY
    return Telemetry(root, writer=writer)
