"""Process-local metrics with cross-process snapshot aggregation.

A :class:`MetricsRegistry` is cheap, in-memory and owned by one process:
counters (monotone totals — jobs executed, dedupe hits, requeues), gauges
(last-value-wins samples — queue depth, in-flight count) and fixed-bucket
histograms (distributions — claim latency, execute duration).  No shared
state, no locks: every service process keeps its own registry and
periodically drops an atomic JSON **snapshot** file into the telemetry
directory (``metrics-<writer>.json``, one file per writer, written
temp-file + ``os.replace`` exactly like every other shared artifact in the
service).  Readers — ``repro status``, tests, dashboards — aggregate the
snapshots: counters and histogram buckets sum across writers, gauges keep
the freshest sample per name.

Fixed buckets are what make histograms mergeable without coordination:
every registry uses the same boundaries (:data:`DEFAULT_BUCKETS`, a
log-spaced 1ms..60s ladder sized for queue/execute latencies), so
aggregation is element-wise addition and quantiles are read off the merged
cumulative counts.

Disabled runs use :data:`NULL_METRICS` — method stubs, nothing allocated —
mirroring :data:`~repro.sim.profiling.NULL_PROFILER`: instrumented code
calls the registry unconditionally and a disabled service pays a handful
of empty method calls per job.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from bisect import bisect_left
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "aggregate_snapshots",
    "read_metrics",
    "read_snapshots",
]

#: Log-spaced latency ladder (seconds).  Values above the last bound land
#: in an overflow bucket, so ``counts`` has ``len(buckets) + 1`` cells.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_SNAPSHOT_GLOB = "metrics-*.json"


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count/max."""

    __slots__ = ("buckets", "counts", "count", "total", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile read off the bucket boundaries.

        Returns the upper bound of the bucket holding the q-th observation
        (the histogram's resolution limit); the overflow bucket reports the
        observed ``max``.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket boundaries"
            )
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
            "max": round(self.max, 9),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        histogram = cls(payload["buckets"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError("histogram payload counts/buckets length mismatch")
        histogram.counts = counts
        histogram.count = int(payload["count"])
        histogram.total = float(payload["sum"])
        histogram.max = float(payload["max"])
        return histogram


class MetricsRegistry:
    """One process's counters, gauges and histograms."""

    enabled = True

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Tuple[float, float]] = {}  # name -> (value, t)
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = (float(value), time.time())

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(self.buckets)
        histogram.observe(value)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, writer: Optional[str] = None) -> dict:
        """This registry's state as a JSON-stable snapshot payload."""
        return {
            "writer": writer,
            "pid": os.getpid(),
            "time": time.time(),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {
                k: {"value": v, "time": t}
                for k, (v, t) in sorted(self.gauges.items())
            },
            "histograms": {
                k: h.as_dict() for k, h in sorted(self.histograms.items())
            },
        }

    def write_snapshot(self, root: Union[str, Path], writer: str) -> Path:
        """Atomically publish this registry's snapshot for aggregation."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        target = root / f"metrics-{writer}.json"
        fd, tmp_name = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.snapshot(writer), handle, separators=(",", ":"))
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target


class NullMetrics(MetricsRegistry):
    """No-op registry for disabled telemetry; every method is a stub."""

    enabled = False

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def write_snapshot(self, root, writer) -> Path:  # pragma: no cover
        raise RuntimeError("NullMetrics does not write snapshots")


#: Shared no-op instance; its tables stay empty by construction.
NULL_METRICS = NullMetrics()


def read_snapshots(root: Union[str, Path]) -> List[dict]:
    """Every writer's latest snapshot in the telemetry directory."""
    root = Path(root)
    snapshots: List[dict] = []
    if not root.exists():
        return snapshots
    for path in sorted(root.glob(_SNAPSHOT_GLOB)):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # torn write races are the reader's problem to skip
        if isinstance(payload, dict):
            snapshots.append(payload)
    return snapshots


def aggregate_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-writer snapshots into one service-wide view.

    Counters sum (each writer reports its own monotone totals), histogram
    buckets sum element-wise (same fixed boundaries everywhere), and each
    gauge keeps the sample with the freshest timestamp — a queue-depth
    gauge is a point-in-time fact, not an additive quantity.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    histograms: Dict[str, Histogram] = {}
    writers = 0
    for snapshot in snapshots:
        writers += 1
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, sample in snapshot.get("gauges", {}).items():
            current = gauges.get(name)
            if current is None or sample.get("time", 0.0) >= current["time"]:
                gauges[name] = {
                    "value": float(sample["value"]),
                    "time": float(sample.get("time", 0.0)),
                }
        for name, payload in snapshot.get("histograms", {}).items():
            try:
                incoming = Histogram.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                continue
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = incoming
            else:
                existing.merge(incoming)
    return {
        "writers": writers,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def read_metrics(root: Union[str, Path]) -> dict:
    """Aggregate every snapshot in a telemetry directory (one call)."""
    return aggregate_snapshots(read_snapshots(root))
