"""Structured job tracing: an append-only JSONL event log for the service.

Every interesting transition in the life of a service job — and of the
workers and schedulers moving it along — is recorded as one JSON line in a
telemetry directory.  The design constraints mirror the spool's:

* **lock-free** — each writer (scheduler process, worker process) appends
  to its *own* ``events-<pid>-<nonce>.jsonl`` file, so concurrent writers
  on one machine or across a shared filesystem never contend or interleave
  lines; :func:`read_events` merges the files on read, sorted by wall
  timestamp (with the per-writer sequence number as tie-break);
* **crash-tolerant** — a writer killed mid-line leaves at most one torn
  record at the end of its file; the reader skips undecodable lines, so a
  SIGKILLed worker (the exact event tracing exists to explain!) never
  poisons the trace;
* **correlated** — every job-scoped record carries the job fingerprint and
  a ``trace`` id derived from it (:func:`trace_id`), so one grep — or the
  ``repro trace`` renderer — reconstructs a job's full
  ``submit -> enqueue -> claim -> probe -> execute -> store -> complete``
  timeline across however many processes touched it, including the second
  ``claim`` after a dead-worker re-queue.

Timestamps come in pairs: ``t`` is wall-clock (``time.time()`` — comparable
across processes and meaningful to humans) and ``m`` is monotonic
(``time.monotonic()`` — immune to clock steps; on Linux the monotonic clock
is system-wide, so same-host durations are computed from ``m``).

The event vocabulary is **closed** (:data:`CANONICAL_EVENTS`): a strict
tracer rejects unknown event names, exactly as the profiling harness pins
its canonical phase names — ad-hoc events would silently fall out of every
renderer and metric.  Fields beyond the envelope are free-form.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "CANONICAL_EVENTS",
    "JOB_EVENTS",
    "NULL_TRACER",
    "NullTracer",
    "RECOVERY_EVENTS",
    "Tracer",
    "WORKER_EVENTS",
    "read_events",
    "trace_id",
    "write_merged",
]

#: The job lifecycle, in order.  ``submit`` is scheduler-side intent,
#: ``enqueue``/``claim`` are the spool's atomic hand-offs, ``probe`` is the
#: worker's dedupe check, ``execute``/``store`` are spans (they carry a
#: ``duration``), ``complete`` is the scheduler observing the result.
JOB_EVENTS = ("submit", "enqueue", "claim", "probe", "execute", "store", "complete")

#: Worker lifecycle events (``worker.heartbeat`` is emitted throttled — the
#: liveness *file* is touched every poll, the event at most once a second).
WORKER_EVENTS = ("worker.start", "worker.stop", "worker.heartbeat")

#: Recovery machinery: execution errors, scheduler retries with backoff,
#: claims pulled back to pending (``requeue`` carries a ``reason`` of
#: ``"dead-worker"`` or ``"timeout"``), claim-age timeouts and terminal
#: failures.
RECOVERY_EVENTS = ("error", "retry", "requeue", "timeout", "failed")

#: The full closed vocabulary a strict :class:`Tracer` accepts.
CANONICAL_EVENTS = JOB_EVENTS + WORKER_EVENTS + RECOVERY_EVENTS

_EVENT_FILE_GLOB = "events-*.jsonl"


def trace_id(fingerprint: str) -> str:
    """The trace id of a job: a 16-hex prefix of its content fingerprint.

    Deterministic by construction — every process that touches the job
    derives the same id with no coordination, and a re-submitted job maps
    onto the same trace (content-addressed results make that the right
    identity: same fingerprint, same work).
    """
    return fingerprint[:16]


class Tracer:
    """One process's append-only JSONL event writer.

    The file is created lazily on first emit and re-opened if the pid
    changes (a forked child must never share the parent's file offset).
    ``strict`` (default) enforces the canonical vocabulary.
    """

    def __init__(
        self,
        root: Union[str, Path],
        writer: Optional[str] = None,
        strict: bool = True,
    ):
        self.root = Path(root)
        self.writer = writer or f"p{os.getpid()}"
        self.strict = strict
        self._handle: Optional[IO[str]] = None
        self._owner_pid: Optional[int] = None
        self._seq = 0

    def _file(self) -> IO[str]:
        pid = os.getpid()
        if self._handle is None or self._owner_pid != pid:
            self.root.mkdir(parents=True, exist_ok=True)
            name = f"events-{pid}-{uuid.uuid4().hex[:6]}.jsonl"
            self._handle = (self.root / name).open("a", encoding="utf-8")
            self._owner_pid = pid
            self._seq = 0
        return self._handle

    def emit(self, event: str, fingerprint: Optional[str] = None, **fields) -> None:
        """Append one event record (and flush — the log must survive SIGKILL)."""
        if self.strict and event not in CANONICAL_EVENTS:
            raise ValueError(
                f"unknown telemetry event {event!r}; the vocabulary is closed "
                f"(see CANONICAL_EVENTS) so traces stay renderable"
            )
        record: Dict[str, object] = {
            "event": event,
            "t": time.time(),
            "m": time.monotonic(),
            "pid": os.getpid(),
            "writer": self.writer,
            "seq": self._seq,
        }
        if fingerprint is not None:
            record["fp"] = fingerprint
            record["trace"] = trace_id(fingerprint)
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        handle = self._file()
        self._seq += 1
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None and self._owner_pid == os.getpid():
            self._handle.close()
        self._handle = None
        self._owner_pid = None

    def __getstate__(self) -> Dict[str, object]:
        # Tracers may ride along on pickled carriers (a spool handed to a
        # pool); the file handle stays behind and re-opens in the child.
        state = self.__dict__.copy()
        state["_handle"] = None
        state["_owner_pid"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Tracer(root={str(self.root)!r}, writer={self.writer!r})"


class NullTracer(Tracer):
    """No-op tracer for disabled runs; ``emit`` is a stub (no validation,
    no I/O) so the wired code paths cost one method call when telemetry is
    off — the :data:`~repro.sim.profiling.NULL_PROFILER` discipline."""

    def __init__(self):
        super().__init__(root=os.devnull, writer="null")

    def emit(self, event: str, fingerprint: Optional[str] = None, **fields) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op instance (it never opens a file by construction).
NULL_TRACER = NullTracer()


def read_events(root: Union[str, Path]) -> List[dict]:
    """Merge every writer's JSONL file into one time-ordered event list.

    Undecodable lines (a writer killed mid-append) and non-dict payloads
    are skipped; ordering is wall time, then writer, then per-writer
    sequence — so two events with colliding timestamps from one writer
    still appear in emit order.
    """
    root = Path(root)
    events: List[dict] = []
    if not root.exists():
        return events
    for path in sorted(root.glob(_EVENT_FILE_GLOB)):
        try:
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of a killed writer
                    if isinstance(record, dict) and "event" in record:
                        events.append(record)
        except OSError:
            continue
    events.sort(
        key=lambda r: (r.get("t", 0.0), str(r.get("writer", "")), r.get("seq", 0))
    )
    return events


def write_merged(events: Iterable[dict], path: Union[str, Path]) -> int:
    """Write an already-merged event list as one JSONL file; line count.

    The artifact format for CI uploads and offline analysis — byte-stable
    given the same events.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in events:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count
