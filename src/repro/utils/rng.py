"""Deterministic random-number management.

Every stochastic component in the library draws randomness from a
``random.Random`` or ``numpy.random.Generator`` instance that is derived from
an explicit seed.  Nothing in the library touches the global random state, so
experiments are reproducible bit-for-bit given a seed, and independent
simulation runs can be derived from a single master seed without correlation.

The helpers here implement a simple, stable seed-derivation scheme based on
hashing the parent seed together with a string "path" (for example
``"pra/robustness/protocol-1732/run-3"``).  Hashing with :mod:`hashlib` is
used instead of Python's built-in :func:`hash` because the latter is salted
per process and therefore not reproducible across runs.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "spawn_numpy_rng", "RngFactory"]

#: Upper bound (exclusive) for derived seeds.  Chosen to fit comfortably in
#: both Python ints and numpy's ``SeedSequence`` entropy words.
_SEED_SPACE = 2**63


def derive_seed(master_seed: int, path: str) -> int:
    """Derive a child seed from ``master_seed`` and a label ``path``.

    The derivation is deterministic across processes and Python versions.

    Parameters
    ----------
    master_seed:
        The parent seed.  Any integer is accepted (negative values are
        folded into the positive range).
    path:
        A label identifying the consumer of the child seed, e.g.
        ``"performance/protocol-17/run-4"``.

    Returns
    -------
    int
        A non-negative integer strictly less than ``2**63``.
    """
    digest = hashlib.sha256(f"{int(master_seed)}::{path}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def spawn_rng(master_seed: int, path: str) -> random.Random:
    """Return a :class:`random.Random` seeded from ``master_seed`` and ``path``."""
    return random.Random(derive_seed(master_seed, path))


def spawn_numpy_rng(master_seed: int, path: str) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` derived from the seed path."""
    return np.random.default_rng(derive_seed(master_seed, path))


class RngFactory:
    """Factory producing independent random generators from one master seed.

    The factory remembers the master seed and hands out child generators
    keyed by string paths.  Asking twice for the same path returns
    *independently seeded but identically initialised* generators, which is
    the property experiment code relies on for reproducibility.

    Examples
    --------
    >>> factory = RngFactory(42)
    >>> r1 = factory.random("run-0")
    >>> r2 = factory.random("run-0")
    >>> r1.random() == r2.random()
    True
    >>> factory.seed_for("run-0") != factory.seed_for("run-1")
    True
    """

    def __init__(self, master_seed: int):
        self._master_seed = int(master_seed)

    @property
    def master_seed(self) -> int:
        """The master seed this factory derives everything from."""
        return self._master_seed

    def seed_for(self, path: str) -> int:
        """Return the derived integer seed for ``path``."""
        return derive_seed(self._master_seed, path)

    def random(self, path: str) -> random.Random:
        """Return a ``random.Random`` for ``path``."""
        return spawn_rng(self._master_seed, path)

    def numpy(self, path: str) -> np.random.Generator:
        """Return a numpy ``Generator`` for ``path``."""
        return spawn_numpy_rng(self._master_seed, path)

    def child(self, path: str) -> "RngFactory":
        """Return a new factory whose master seed is derived from ``path``.

        Useful for handing a whole sub-experiment its own seed namespace.
        """
        return RngFactory(self.seed_for(path))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(master_seed={self._master_seed})"


def coerce_rng(rng: Optional[random.Random], seed: Optional[int] = None) -> random.Random:
    """Return ``rng`` if given, else a new ``random.Random`` seeded with ``seed``.

    This is the conventional argument-normalisation helper used by simulator
    entry points that accept either an explicit generator or a seed.
    """
    if rng is not None:
        return rng
    return random.Random(seed)
