"""Argument-validation helpers.

These helpers centralise the small amount of defensive checking done at the
public API boundary.  They raise ``ValueError`` with consistent messages so
tests can assert on behaviour and users get actionable errors instead of
silent misconfiguration (a "magic number" typo in an experiment config should
fail loudly).
"""

from __future__ import annotations

from typing import Iterable, TypeVar

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
    "check_in",
]

T = TypeVar("T")


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Alias of :func:`check_probability` for population-fraction arguments."""
    return check_probability(value, name)


def check_in(value: T, allowed: Iterable[T], name: str) -> T:
    """Return ``value`` if it is a member of ``allowed``, else raise ``ValueError``."""
    allowed_list = list(allowed)
    if value not in allowed_list:
        raise ValueError(f"{name} must be one of {allowed_list!r}, got {value!r}")
    return value
