"""Logging configuration for the library.

The library never configures the root logger on import; applications opt in
by calling :func:`configure_logging`.  Library modules obtain loggers via
:func:`get_logger` so all output shares the ``repro.`` namespace and can be
filtered by the host application.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = [
    "configure_logging",
    "configure_progress_logging",
    "get_logger",
    "get_progress_logger",
]

_ROOT_NAME = "repro"
_PROGRESS_NAME = "repro.progress"
_DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_PROGRESS_FORMAT = "%(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the ``repro`` namespace.

    ``get_logger("core.pra")`` returns the logger ``repro.core.pra``;
    ``get_logger()`` returns the package root logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Calling this more than once replaces the previously attached handler so
    interactive sessions do not accumulate duplicate output.

    Parameters
    ----------
    level:
        Logging level for the ``repro`` namespace.
    stream:
        Output stream; defaults to ``sys.stderr``.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_DEFAULT_FORMAT))
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_progress_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro.progress`` namespace.

    Progress lines (per-cell atlas completions, the ``serve`` stats ticker)
    are user-facing output, not diagnostics: they render bare (no
    timestamp/level prefix) and go to stdout, separately configurable from
    the diagnostic ``repro.*`` stream — which is what lets ``--quiet``
    silence them without touching warnings.
    """
    if not name:
        return logging.getLogger(_PROGRESS_NAME)
    return logging.getLogger(f"{_PROGRESS_NAME}.{name}")


def configure_progress_logging(
    quiet: bool = False, stream=None
) -> logging.Logger:
    """Attach a bare-message stdout handler to ``repro.progress``.

    With ``quiet`` the level is raised to WARNING, so routine progress
    lines vanish while anything genuinely alarming still prints.  Like
    :func:`configure_logging`, repeated calls replace the managed handler.
    ``stream`` defaults to ``sys.stdout`` — progress is output, pipelines
    ``grep`` it (the CI smoke job does), diagnostics stay on stderr.
    """
    logger = logging.getLogger(_PROGRESS_NAME)
    logger.setLevel(logging.WARNING if quiet else logging.INFO)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stdout)
    handler.setFormatter(logging.Formatter(_PROGRESS_FORMAT))
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
