"""JSON serialization helpers for experiment results.

Experiment drivers persist intermediate results (for example the PRA study
shared by Figures 2-8 and Table 3) as JSON so repeated figure generation does
not repeat the expensive sweep.  The helpers here convert the dataclass /
numpy-laden result objects used internally into plain JSON-compatible
structures and back.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from pathlib import Path
from typing import Any, Union

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable builtins.

    Handles dataclasses, enums, numpy scalars and arrays, mappings, sets and
    sequences.  Unknown objects are passed through unchanged (``json.dump``
    will raise if they are genuinely unserialisable, which is the desired
    loud failure).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, Path):
        return str(obj)
    return obj


def dump_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialise ``obj`` to JSON at ``path``, creating parent directories.

    Returns the path written, as a :class:`~pathlib.Path`.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return target


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON from ``path`` and return the parsed structure."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
