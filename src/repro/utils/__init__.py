"""Shared utilities for the reproduction package.

This sub-package contains small, dependency-free helpers used throughout the
library: deterministic random number management (:mod:`repro.utils.rng`),
result serialization (:mod:`repro.utils.serialization`), argument validation
(:mod:`repro.utils.validation`), lightweight timing (:mod:`repro.utils.timer`)
and logging configuration (:mod:`repro.utils.logging`).
"""

from repro.utils.rng import RngFactory, derive_seed, spawn_rng
from repro.utils.serialization import (
    dump_json,
    load_json,
    to_jsonable,
)
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngFactory",
    "derive_seed",
    "spawn_rng",
    "dump_json",
    "load_json",
    "to_jsonable",
    "Timer",
    "check_fraction",
    "check_in",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
