"""Two-sample statistical-equivalence primitives.

The ``vec`` engine samples the same stochastic process as the replica
engines but with different random draws, so its gate is distributional
rather than bit-identical: the ``tests/statistical/`` harness compares
seed-batch outputs of ``vec`` and ``fast`` with the helpers here.

Only numpy is assumed (the CI environment has no scipy), so the
Kolmogorov–Smirnov machinery is implemented directly: the two-sample KS
statistic via a merged-ECDF sweep, and the classical large-sample rejection
threshold

    ``D_crit = c(alpha) * sqrt((n + m) / (n * m))``,
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)``,

which is the Smirnov asymptotic approximation — conservative enough for the
batch sizes the harness uses (tens of seeds, hundreds of pooled peers).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ks_statistic",
    "ks_critical_value",
    "ks_two_sample_passes",
    "relative_difference",
]


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``.

    Raises
    ------
    ValueError
        If either sample is empty.
    """
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("ks_statistic requires two non-empty samples")
    # Evaluate both ECDFs at every observed point: F(x) = P(X <= x).
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_critical_value(n: int, m: int, alpha: float = 0.01) -> float:
    """Rejection threshold for the two-sample KS statistic at level ``alpha``.

    Values of :func:`ks_statistic` above this reject the hypothesis that the
    two samples come from the same distribution.
    """
    if n < 1 or m < 1:
        raise ValueError("both sample sizes must be >= 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    c_alpha = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c_alpha * math.sqrt((n + m) / (n * m))


def ks_two_sample_passes(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.01,
) -> Tuple[bool, float, float]:
    """KS equivalence check; returns ``(passes, statistic, critical_value)``.

    ``passes`` is ``True`` when the samples are *not* distinguishable at
    level ``alpha`` — the acceptance direction the equivalence harness
    wants, so a drifting engine fails loudly.
    """
    statistic = ks_statistic(sample_a, sample_b)
    critical = ks_critical_value(len(sample_a), len(sample_b), alpha)
    return statistic <= critical, statistic, critical


def relative_difference(value_a: float, value_b: float) -> float:
    """``|a - b|`` scaled by the larger magnitude (0 when both are ~0).

    Symmetric in its arguments and well-defined at zero, which matters for
    metrics like departure rates that are legitimately 0.0 in churn-free
    scenarios.
    """
    scale = max(abs(value_a), abs(value_b))
    if scale <= 1e-12:
        return 0.0
    return abs(value_a - value_b) / scale
