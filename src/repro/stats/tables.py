"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series as the paper's tables and
figures.  This module renders lists of rows as aligned plain-text tables so
the drivers don't each reinvent string formatting — plus the CSV twin used
by the robustness atlas to emit machine-readable heat maps (CI uploads them
as artifacts).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_csv", "format_float"]


def format_float(value, digits: int = 3) -> str:
    """Format a float for table output, passing through non-numeric cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 3,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.
    digits:
        Decimal places used to format float cells.
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table, ending without a trailing newline.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [format_float(cell, digits) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)

    widths = [len(str(h)) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append(render_line(cells))
    return "\n".join(lines)


def _csv_cell(value: object, digits: int) -> str:
    """One CSV cell with minimal quoting (commas, quotes, newlines)."""
    text = format_float(value, digits)
    if any(c in text for c in (',', '"', '\n')):
        return '"' + text.replace('"', '""') + '"'
    return text


def format_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 6,
) -> str:
    """Render ``rows`` under ``headers`` as CSV (trailing newline included).

    Float cells use ``digits`` decimal places via :func:`format_float`, so
    the CSV and plain-text renderings of the same rows agree up to
    precision.  Every row must have ``len(headers)`` cells.
    """
    n_headers = len(headers)
    lines = [",".join(_csv_cell(h, digits) for h in headers)]
    for row in rows:
        cells = [_csv_cell(cell, digits) for cell in row]
        if len(cells) != n_headers:
            raise ValueError(
                f"row has {len(cells)} cells but there are {n_headers} headers"
            )
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
