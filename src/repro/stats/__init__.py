"""Statistics substrate used by the DSA analysis.

The paper's analysis section relies on a small set of statistical tools:

* multiple linear regression with categorical dummy coding, adjusted R²,
  standard errors, t-values and significance flags (Table 3),
* Pearson correlation (robustness vs. aggressiveness, Figure 8; the 50/50
  vs. 90/10 robustness consistency check in §4.3.2),
* empirical CDF / complementary CDF curves (Figure 5),
* 2-D histograms of a score against a design parameter (Figures 3 and 4),
* simple summary statistics with confidence intervals (error bars of
  Figures 9 and 10),
* two-sample statistical-equivalence primitives (KS tests, relative
  tolerances) gating the ``vec`` engine against the replica engines.

All of these are implemented here on top of numpy/scipy so the experiment
drivers stay small and testable.
"""

from repro.stats.correlation import pearson_correlation, spearman_rank_correlation
from repro.stats.distribution import (
    ccdf,
    ecdf,
    histogram2d_frequency,
    normalized_histogram,
)
from repro.stats.equivalence import (
    ks_critical_value,
    ks_statistic,
    ks_two_sample_passes,
    relative_difference,
)
from repro.stats.regression import (
    DesignMatrix,
    RegressionResult,
    RegressionTerm,
    dummy_code,
    fit_ols,
    standardize,
)
from repro.stats.summary import (
    SummaryStats,
    confidence_interval,
    mean_confidence_interval,
    summarize,
)

__all__ = [
    "pearson_correlation",
    "spearman_rank_correlation",
    "ccdf",
    "ecdf",
    "histogram2d_frequency",
    "normalized_histogram",
    "ks_critical_value",
    "ks_statistic",
    "ks_two_sample_passes",
    "relative_difference",
    "DesignMatrix",
    "RegressionResult",
    "RegressionTerm",
    "dummy_code",
    "fit_ols",
    "standardize",
    "SummaryStats",
    "confidence_interval",
    "mean_confidence_interval",
    "summarize",
]
