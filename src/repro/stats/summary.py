"""Summary statistics and confidence intervals.

Figures 9 and 10 in the paper report average download times over at least 10
runs with 95% confidence interval error bars.  The helpers here compute the
mean, variance and a Student-t confidence interval for a sample, packaged in
a small dataclass the experiment drivers can print directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "mean_confidence_interval",
]


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval (the error-bar length)."""
        return (self.ci_high - self.ci_low) / 2.0


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of ``values``.

    For a single observation (or zero sample variance) the interval collapses
    to the point estimate.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("confidence_interval requires at least one observation")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean
    sem = float(data.std(ddof=1)) / float(np.sqrt(data.size))
    if sem == 0.0:
        return mean, mean
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    half = t_crit * sem
    return mean - half, mean + half


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Return ``(mean, ci_low, ci_high)`` for ``values``."""
    data = np.asarray(values, dtype=float)
    low, high = confidence_interval(data, confidence)
    return float(data.mean()), low, high


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Return a :class:`SummaryStats` for ``values``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("summarize requires at least one observation")
    low, high = confidence_interval(data, confidence)
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    return SummaryStats(
        count=int(data.size),
        mean=float(data.mean()),
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )
