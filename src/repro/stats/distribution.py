"""Empirical distribution helpers (ECDF, CCDF, histograms).

Figure 5 of the paper plots complementary CDFs of robustness per stranger
policy; Figures 3 and 4 plot, for each score interval, the relative frequency
of every ``number of partners`` value (rendered in the paper as darker /
lighter squares).  The functions here compute exactly those curves and
matrices as plain arrays so the experiment drivers can print or export them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["ecdf", "ccdf", "normalized_histogram", "histogram2d_frequency"]


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return the empirical CDF of ``values`` as ``(sorted_x, cumulative_prob)``.

    The returned probabilities are ``P(X <= x)`` evaluated at each sorted
    sample point.

    Raises
    ------
    ValueError
        If ``values`` is empty.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("ecdf requires at least one observation")
    xs = np.sort(data)
    probs = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, probs


def ccdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return the complementary CDF ``P(X > x)`` of ``values``.

    The curve is evaluated at each sorted sample point, matching the style of
    Figure 5 in the paper (``P(X > x)`` on the y-axis against ``x``).
    """
    xs, cdf = ecdf(values)
    return xs, 1.0 - cdf


def normalized_histogram(
    values: Sequence[float],
    bins: int = 10,
    value_range: Tuple[float, float] = (0.0, 1.0),
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of ``values`` normalised to relative frequencies.

    Returns ``(bin_edges, frequencies)`` where frequencies sum to 1 (unless
    the input is empty, in which case they are all zero).
    """
    data = np.asarray(values, dtype=float)
    counts, edges = np.histogram(data, bins=bins, range=value_range)
    total = counts.sum()
    freqs = counts / total if total > 0 else counts.astype(float)
    return edges, freqs


def histogram2d_frequency(
    categories: Sequence[float],
    scores: Sequence[float],
    category_values: Sequence[float],
    score_bins: int = 10,
    score_range: Tuple[float, float] = (0.0, 1.0),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-score-interval relative frequency of each category value.

    This reproduces the presentation of Figures 3 and 4: for every score
    interval (rows), the relative frequency of each category value (columns),
    where "category" is the number of partners a protocol maintains.

    Parameters
    ----------
    categories:
        Category value per observation (e.g. number of partners of each
        protocol).
    scores:
        Score per observation in ``score_range`` (e.g. normalised
        performance).
    category_values:
        The ordered set of category values to report columns for.
    score_bins:
        Number of score intervals (rows).
    score_range:
        Interval covered by the score axis.

    Returns
    -------
    (bin_edges, category_values, matrix)
        ``matrix[i, j]`` is the relative frequency (within score interval
        ``i``) of category ``category_values[j]``.  Rows with no observations
        are all zero.
    """
    cats = np.asarray(categories, dtype=float)
    vals = np.asarray(scores, dtype=float)
    if cats.shape != vals.shape:
        raise ValueError("categories and scores must have the same length")
    col_values = np.asarray(list(category_values), dtype=float)
    edges = np.linspace(score_range[0], score_range[1], score_bins + 1)
    matrix = np.zeros((score_bins, col_values.size), dtype=float)

    # np.digitize puts x == right edge into the next bin; clamp the top value
    # into the last interval so a score of exactly 1.0 is counted.
    bin_index = np.clip(np.digitize(vals, edges) - 1, 0, score_bins - 1)
    for row in range(score_bins):
        mask = bin_index == row
        row_total = int(mask.sum())
        if row_total == 0:
            continue
        for col, cat_value in enumerate(col_values):
            matrix[row, col] = float(np.sum(cats[mask] == cat_value)) / row_total
    return edges, col_values, matrix
