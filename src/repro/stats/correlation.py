"""Correlation measures.

The paper reports two Pearson correlation coefficients: 0.96 between
robustness and aggressiveness over the full design space (Figure 8) and 0.97
between robustness computed with 50/50 and with 90/10 population splits
(§4.3.2).  Only the plain Pearson product-moment coefficient is required, but
it is implemented here (rather than calling ``numpy.corrcoef`` at call sites)
so degenerate inputs are handled uniformly and the behaviour is unit tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["pearson_correlation", "spearman_rank_correlation"]


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Return the Pearson correlation coefficient between ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Equal-length numeric sequences with at least two elements.

    Returns
    -------
    float
        The correlation coefficient in [-1, 1].  If either input has zero
        variance the correlation is undefined and ``nan`` is returned (this
        mirrors ``scipy.stats.pearsonr`` behaviour without emitting warnings).

    Raises
    ------
    ValueError
        If the inputs differ in length or have fewer than two elements.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            f"x and y must have the same length, got {xs.shape} and {ys.shape}"
        )
    if xs.ndim != 1:
        raise ValueError("inputs must be one-dimensional")
    if xs.size < 2:
        raise ValueError("at least two observations are required")

    xd = xs - xs.mean()
    yd = ys - ys.mean()
    denom = np.sqrt(np.sum(xd * xd) * np.sum(yd * yd))
    if denom == 0.0:
        return float("nan")
    return float(np.clip(np.sum(xd * yd) / denom, -1.0, 1.0))


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks of ``values`` (1-based), ties receiving their average rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks within each group of equal values.
    sorted_values = values[order]
    i = 0
    while i < sorted_values.size:
        j = i
        while j + 1 < sorted_values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks


def spearman_rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Return Spearman's rank correlation coefficient between ``x`` and ``y``.

    Defined as the Pearson correlation of the average-tie ranks, so it
    measures monotone (not linear) association — exactly what is needed to
    compare *orderings* of protocol variants across execution substrates,
    where the two score scales are incommensurable.  Degenerate inputs
    follow :func:`pearson_correlation`: constant input → ``nan``.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            f"x and y must have the same length, got {xs.shape} and {ys.shape}"
        )
    if xs.ndim != 1:
        raise ValueError("inputs must be one-dimensional")
    if xs.size < 2:
        raise ValueError("at least two observations are required")
    return pearson_correlation(_average_ranks(xs), _average_ranks(ys))
