"""Ordinary least squares regression with dummy coding (Table 3).

Table 3 of the paper reports, for each PRA measure, a multiple linear
regression of the measure against the design-space dimensions: the
(standardised, log-transformed) numbers of partners ``k`` and strangers
``h`` as numeric covariates, and the categorical actualizations (stranger
policy B2/B3, candidate list C2, ranking function I2..I6, allocation R2/R3)
as dummy variables relative to a reference level.  For every coefficient the
paper lists the estimate, the t-value and whether it is significant at the
0.001 level, plus the adjusted R² of the whole fit.

This module implements exactly that pipeline:

* :func:`dummy_code` expands a categorical column into 0/1 indicator columns
  relative to a reference level,
* :func:`standardize` centres and scales numeric covariates,
* :class:`DesignMatrix` assembles named columns into a matrix with an
  intercept,
* :func:`fit_ols` performs the least-squares fit and returns a
  :class:`RegressionResult` with per-term estimates, standard errors,
  t-values, p-values and the (adjusted) R².
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "RegressionTerm",
    "RegressionResult",
    "DesignMatrix",
    "dummy_code",
    "standardize",
    "fit_ols",
]


def standardize(values: Sequence[float]) -> np.ndarray:
    """Centre ``values`` to zero mean and unit (population) standard deviation.

    A zero-variance column is returned centred but unscaled so the design
    matrix stays finite; the corresponding coefficient will simply be zero.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("standardize requires at least one observation")
    centred = data - data.mean()
    std = data.std()
    if std == 0.0:
        return centred
    return centred / std


def dummy_code(
    values: Sequence[str],
    reference: str,
    levels: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Dummy-code a categorical column relative to ``reference``.

    Parameters
    ----------
    values:
        Observed category labels.
    reference:
        The level absorbed into the intercept (no column produced for it).
    levels:
        Optional explicit level ordering.  Defaults to the sorted unique
        labels observed.  ``reference`` must be among the levels.

    Returns
    -------
    dict
        Mapping ``level -> indicator column`` for each non-reference level.
    """
    observed = list(values)
    if levels is None:
        levels = sorted(set(observed))
    if reference not in levels:
        raise ValueError(f"reference level {reference!r} not among levels {levels!r}")
    unknown = set(observed) - set(levels)
    if unknown:
        raise ValueError(f"observed labels not in declared levels: {sorted(unknown)!r}")
    columns: Dict[str, np.ndarray] = {}
    arr = np.asarray(observed, dtype=object)
    for level in levels:
        if level == reference:
            continue
        columns[level] = (arr == level).astype(float)
    return columns


@dataclass(frozen=True)
class RegressionTerm:
    """One row of a regression table."""

    name: str
    estimate: float
    std_error: float
    t_value: float
    p_value: float

    def is_significant(self, alpha: float = 0.001) -> bool:
        """Whether the term is significant at level ``alpha`` (paper uses 0.001)."""
        return self.p_value < alpha


@dataclass
class RegressionResult:
    """Result of an OLS fit: per-term statistics plus goodness of fit."""

    terms: List[RegressionTerm]
    r_squared: float
    adjusted_r_squared: float
    residual_std_error: float
    n_observations: int
    n_parameters: int

    def term(self, name: str) -> RegressionTerm:
        """Return the term named ``name`` (raises ``KeyError`` if absent)."""
        for term in self.terms:
            if term.name == name:
                return term
        raise KeyError(name)

    @property
    def term_names(self) -> List[str]:
        return [term.name for term in self.terms]

    def coefficients(self) -> Dict[str, float]:
        """Mapping of term name to estimate."""
        return {term.name: term.estimate for term in self.terms}

    def as_rows(self, alpha: float = 0.001) -> List[Tuple[str, float, float, str]]:
        """Rows ``(name, estimate, t_value, significance_flag)`` as in Table 3."""
        return [
            (
                term.name,
                term.estimate,
                term.t_value,
                "OK" if term.is_significant(alpha) else "-",
            )
            for term in self.terms
        ]


class DesignMatrix:
    """Named-column design matrix with an implicit intercept.

    The builder interface keeps the experiment drivers declarative::

        dm = DesignMatrix(n)
        dm.add_numeric("log(k)", standardize(np.log(k)))
        dm.add_categorical("stranger", labels, reference="B1")
        result = fit_ols(dm, y)
    """

    def __init__(self, n_observations: int, include_intercept: bool = True):
        if n_observations <= 0:
            raise ValueError("n_observations must be positive")
        self._n = int(n_observations)
        self._names: List[str] = []
        self._columns: List[np.ndarray] = []
        self._include_intercept = include_intercept
        if include_intercept:
            self._names.append("(intercept)")
            self._columns.append(np.ones(self._n, dtype=float))

    @property
    def n_observations(self) -> int:
        return self._n

    @property
    def column_names(self) -> List[str]:
        return list(self._names)

    def add_numeric(self, name: str, values: Sequence[float]) -> "DesignMatrix":
        """Add a numeric covariate column."""
        column = np.asarray(values, dtype=float)
        if column.shape != (self._n,):
            raise ValueError(
                f"column {name!r} has shape {column.shape}, expected ({self._n},)"
            )
        if name in self._names:
            raise ValueError(f"duplicate column name {name!r}")
        self._names.append(name)
        self._columns.append(column)
        return self

    def add_categorical(
        self,
        name: str,
        values: Sequence[str],
        reference: str,
        levels: Optional[Sequence[str]] = None,
    ) -> "DesignMatrix":
        """Add dummy-coded columns for a categorical covariate.

        Column names are the level labels themselves (as in Table 3, where the
        rows are simply "B2", "B3", "C2", ...).
        """
        if len(values) != self._n:
            raise ValueError(
                f"categorical {name!r} has {len(values)} values, expected {self._n}"
            )
        for level, column in dummy_code(values, reference=reference, levels=levels).items():
            self.add_numeric(level, column)
        return self

    def matrix(self) -> np.ndarray:
        """Return the assembled design matrix (observations x columns)."""
        return np.column_stack(self._columns)


def fit_ols(design: DesignMatrix, response: Sequence[float]) -> RegressionResult:
    """Fit ordinary least squares of ``response`` on ``design``.

    Standard errors use the classical homoskedastic estimator
    ``sigma^2 (X'X)^{-1}``; a pseudo-inverse is used so rank-deficient designs
    (e.g. a constant dummy column in a degenerate subsample) still return a
    result rather than raising.

    Returns a :class:`RegressionResult` whose terms appear in design-matrix
    column order (intercept first), matching the layout of Table 3.
    """
    y = np.asarray(response, dtype=float)
    X = design.matrix()
    n, p = X.shape
    if y.shape != (n,):
        raise ValueError(f"response has shape {y.shape}, expected ({n},)")
    if n <= p:
        raise ValueError(
            f"need more observations ({n}) than parameters ({p}) for OLS inference"
        )

    xtx = X.T @ X
    xtx_inv = np.linalg.pinv(xtx)
    beta = xtx_inv @ X.T @ y
    fitted = X @ beta
    residuals = y - fitted

    dof = n - p
    rss = float(residuals @ residuals)
    sigma2 = rss / dof
    tss = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - rss / tss if tss > 0 else 0.0
    adj_r2 = 1.0 - (1.0 - r2) * (n - 1) / dof if dof > 0 else float("nan")

    std_errors = np.sqrt(np.clip(np.diag(xtx_inv) * sigma2, 0.0, None))
    terms: List[RegressionTerm] = []
    for name, estimate, se in zip(design.column_names, beta, std_errors):
        if se > 0:
            t_value = float(estimate / se)
            p_value = float(2.0 * scipy_stats.t.sf(abs(t_value), df=dof))
        else:
            t_value = float("nan") if estimate == 0 else float("inf")
            p_value = 1.0 if estimate == 0 else 0.0
        terms.append(
            RegressionTerm(
                name=name,
                estimate=float(estimate),
                std_error=float(se),
                t_value=t_value,
                p_value=p_value,
            )
        )

    return RegressionResult(
        terms=terms,
        r_squared=float(r2),
        adjusted_r_squared=float(adj_r2),
        residual_std_error=float(np.sqrt(sigma2)),
        n_observations=n,
        n_parameters=p,
    )
