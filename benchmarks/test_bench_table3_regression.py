"""Table 3: regression of the PRA measures on the design dimensions."""

from __future__ import annotations

import math

from repro.experiments import table3


def test_table3_regression(benchmark, bench_study):
    result = benchmark(table3.from_study, bench_study)
    print()
    print(table3.render(result))

    assert set(result.fits) == {"performance", "robustness", "aggressiveness"}
    for value in result.adjusted_r_squared().values():
        assert math.isfinite(value)
    # Paper's headline regression signs: Freeride (R3) has the biggest
    # negative impact on Performance, and the Defect stranger policy (B3) has
    # the biggest negative effect on Robustness.
    assert result.coefficient("performance", "R3") < 0
    assert result.coefficient("robustness", "B3") < 0
