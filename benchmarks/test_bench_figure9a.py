"""Figure 9(a): BitTorrent vs Loyal-When-needed swarm encounters."""

from __future__ import annotations

from repro.bittorrent.variants import loyal_when_needed_client, reference_bittorrent
from repro.experiments import figure9


def test_figure9a_bittorrent_vs_loyal_when_needed(benchmark, bench_scale, bench_seed):
    panel = benchmark.pedantic(
        figure9.run_panel,
        args=(loyal_when_needed_client(), reference_bittorrent(), "a"),
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(figure9.render(figure9.Figure9Result(panels={"a": panel}, runs_per_point=3)))

    fractions = [p.fraction for p in panel.points]
    assert fractions[0] == 0.0 and fractions[-1] == 1.0
    # Every populated data point reports a positive mean download time and
    # full completion.
    for point in panel.points:
        for variant, mean in point.mean_time.items():
            if mean is not None:
                assert mean > 0
                assert point.completion[variant] == 1.0
