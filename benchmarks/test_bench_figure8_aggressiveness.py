"""Figure 8: robustness vs aggressiveness correlation."""

from __future__ import annotations

from repro.experiments import figure8


def test_figure8_robustness_aggressiveness_correlation(benchmark, bench_study):
    result = benchmark(figure8.from_study, bench_study)
    print()
    print(figure8.render(result))

    assert len(result.points) == len(bench_study)
    # Paper: Pearson correlation of 0.96 between robustness and
    # aggressiveness; the strong positive correlation survives the scaled-down
    # sweep.
    assert result.pearson_r > 0.6
