"""Shared fixtures for the benchmark harness.

Figures 2-8 and Table 3 are all read off the same PRA sweep; the sweep is run
once per session by the ``bench_study`` fixture (untimed) so each per-figure
benchmark measures only the figure's own derivation.  A dedicated benchmark
(`test_bench_pra_sweep.py`) measures the sweep itself at a reduced size so the
tournament cost is still tracked.

The whole session additionally shares one experiment runner with a
content-addressed result cache (``bench_runner``): any simulation already
executed anywhere in the session — most importantly by the shared sweep — is
reused instead of recomputed.  Results are bit-identical either way (cache
hits reproduce fresh runs exactly; see the runner property tests), so the
benchmarks measure each experiment's *novel* simulation work, mirroring how
the paper's figures share one gigantic sweep.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables/series printed by each benchmark.
"""

from __future__ import annotations

import pytest

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.runner import ExperimentRunner, configure_default_runner, set_default_runner

#: The scale used by every benchmark in this directory (see EXPERIMENTS.md).
BENCH_SCALE = "bench"
BENCH_SEED = 0


@pytest.fixture(scope="session", autouse=True)
def bench_runner(tmp_path_factory) -> ExperimentRunner:
    """Session-wide runner with a shared simulation result cache."""
    cache_dir = tmp_path_factory.mktemp("bench-result-cache")
    runner = configure_default_runner(jobs=1, cache_dir=cache_dir)
    yield runner
    set_default_runner(None)


@pytest.fixture(scope="session")
def bench_study(bench_runner) -> PRAStudyResult:
    """The shared bench-scale PRA sweep (computed once per session)."""
    return shared_pra_study(BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED
