"""Appendix: the single-deviant Nash-equilibrium analysis."""

from __future__ import annotations

from repro.experiments import section2_analytic
from repro.gametheory.analytic import SwarmModel
from repro.gametheory.classes import piatek_classes


def test_appendix_deviation_analysis(benchmark):
    model = SwarmModel(piatek_classes(50), regular_unchoke_slots=4)

    def deviations():
        return (
            model.birds_deviant_in_bittorrent_swarm(0),
            model.bittorrent_deviant_in_birds_swarm(0),
        )

    birds_deviant, bt_deviant = benchmark(deviations)
    result = section2_analytic.run()
    print()
    print(section2_analytic.render(result))

    # Paper's Appendix result: BitTorrent is not a Nash equilibrium (a Birds
    # deviant gains), Birds is (a BitTorrent deviant loses).
    assert birds_deviant.deviation_profitable
    assert not bt_deviant.deviation_profitable
    assert result.bittorrent_is_nash is False
    assert result.birds_is_nash is True
