"""Ablations of the substrate modelling decisions called out in DESIGN.md.

Two deliberate modelling choices of the cycle-based simulator are swept here
so their influence on the headline comparisons is visible:

* the cap on the fraction of upload capacity spent on strangers
  (``stranger_bandwidth_cap``), and
* the discovery rate (how many random peers a node learns about per round).

The benchmark asserts the qualitative conclusions the experiments rely on —
cooperators beat freeriders in encounters — at every swept setting, i.e. the
headline results are not an artefact of one particular constant.
"""

from __future__ import annotations

from repro.core.encounter import run_encounter
from repro.core.protocol import Protocol, bittorrent_reference
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


def _freerider() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )


def test_stranger_cap_ablation(benchmark):
    caps = (0.25, 0.5, 1.0)

    def sweep():
        outcomes = {}
        for cap in caps:
            config = SimulationConfig(n_peers=16, rounds=40, stranger_bandwidth_cap=cap)
            outcomes[cap] = run_encounter(
                bittorrent_reference(), _freerider(), config, runs=2, seed=11
            )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for cap, outcome in outcomes.items():
        print(f"stranger cap {cap}: cooperator {outcome.mean_download_a:.0f} "
              f"vs freerider {outcome.mean_download_b:.0f}")
        assert outcome.mean_download_a > outcome.mean_download_b


def test_discovery_rate_ablation(benchmark):
    rates = (0, 1, 3)

    def sweep():
        outcomes = {}
        for rate in rates:
            config = SimulationConfig(n_peers=16, rounds=40, discovery_per_round=rate)
            outcomes[rate] = run_encounter(
                bittorrent_reference(), _freerider(), config, runs=2, seed=12
            )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for rate, outcome in outcomes.items():
        print(f"discovery/round {rate}: cooperator {outcome.mean_download_a:.0f} "
              f"vs freerider {outcome.mean_download_b:.0f}")
        assert outcome.mean_download_a > outcome.mean_download_b
