"""Figure 9(c): Birds vs Loyal-When-needed swarm encounters."""

from __future__ import annotations

from repro.bittorrent.variants import birds_client, loyal_when_needed_client
from repro.experiments import figure9


def test_figure9c_birds_vs_loyal_when_needed(benchmark, bench_scale, bench_seed):
    panel = benchmark.pedantic(
        figure9.run_panel,
        args=(loyal_when_needed_client(), birds_client(), "c"),
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(figure9.render(figure9.Figure9Result(panels={"c": panel}, runs_per_point=3)))

    for point in panel.points:
        for variant, mean in point.mean_time.items():
            if mean is not None:
                assert mean > 0
