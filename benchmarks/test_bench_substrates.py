"""Throughput benchmarks of the two simulation substrates.

These are not paper figures; they track the cost of the building blocks every
experiment is made of (one cycle-simulator run and one piece-level swarm run)
so performance regressions in the substrates are visible independently of the
experiment drivers.
"""

from __future__ import annotations

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.swarm import SwarmSimulation
from repro.bittorrent.variants import reference_bittorrent as bt_client
from repro.core.protocol import bittorrent_reference
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation


def test_cycle_simulator_single_run(benchmark):
    config = SimulationConfig(n_peers=50, rounds=100)

    def run():
        return Simulation(config, [bittorrent_reference().behavior], seed=1).run()

    result = benchmark(run)
    assert result.throughput > 0


def test_swarm_simulator_single_run(benchmark):
    config = SwarmConfig.paper()

    def run():
        return SwarmSimulation(config, [bt_client()], seed=1).run()

    result = benchmark(run)
    assert result.completion_fraction() == 1.0
