"""§4.3.2 consistency check: robustness under 50/50 vs 90/10 splits."""

from __future__ import annotations

from repro.experiments import robustness_split_check


def test_split_check(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        robustness_split_check.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(robustness_split_check.render(result))

    # Paper: Pearson correlation 0.97 between the two splits; the strong
    # positive relationship holds on the scaled-down sample too.
    assert result.pearson_r > 0.4
