"""Figure 2: Robustness vs Performance scatter over the swept design space."""

from __future__ import annotations

from repro.experiments import figure2


def test_figure2_scatter(benchmark, bench_study):
    result = benchmark(figure2.from_study, bench_study)
    print()
    print(figure2.render(result))

    assert result.n_protocols == len(bench_study)
    # Paper: freeriders populate the low-performance cluster (their best
    # protocol reaches only 0.31); our substrate keeps them clearly below the
    # cooperative protocols.
    assert result.freerider_max_performance < 0.5
    assert abs(sum(result.performance_hist) - 1.0) < 1e-9
