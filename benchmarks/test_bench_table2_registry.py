"""Table 2: existing systems mapped onto the generic design space."""

from __future__ import annotations

from repro.experiments import table2


def test_table2_registry(benchmark):
    result = benchmark(table2.run)
    print()
    print(table2.render(result))

    assert len(result.rows) == 6
    assert {row[0] for row in result.rows} >= {"Maze", "BarterCast", "Pulse"}
