"""Figure 5: complementary CDFs of robustness per stranger policy."""

from __future__ import annotations

from repro.experiments import figure5


def test_figure5_robustness_ccdf_by_stranger_policy(benchmark, bench_study):
    result = benchmark(figure5.from_study, bench_study)
    print()
    print(figure5.render(result))

    assert {"B1", "B2", "B3"} <= set(result.curves)
    # Paper: the Defect stranger policy is the worst choice for robustness,
    # while the cooperative policies (Periodic / When-needed) dominate it.
    assert result.group_means["B3"] < result.group_means["B2"]
    assert result.group_means["B3"] < result.group_means["B1"]
