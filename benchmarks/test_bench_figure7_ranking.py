"""Figure 7: robustness per ranking function."""

from __future__ import annotations

from repro.experiments import figure7


def test_figure7_robustness_by_ranking(benchmark, bench_study):
    result = benchmark(figure7.from_study, bench_study)
    print()
    print(figure7.render(result))

    assert len(result.points) == 6
    # Paper: Sort Fastest protocols are the most robust ranking group; Sort
    # Slowest trails it.
    assert result.group_means["I1"] > result.group_means["I2"]
