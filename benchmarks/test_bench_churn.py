"""§4.4 churn check: performance conclusions under churn 0.01 and 0.1."""

from __future__ import annotations

from repro.experiments import churn_check


def test_churn_check(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        churn_check.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(churn_check.render(result))

    assert set(result.performance) == {0.0, 0.01, 0.1}
    # Paper: the performance conclusions survive churn; here that shows up as
    # a strongly positive correlation between churned and churn-free
    # performance rankings.
    assert result.correlation_with_baseline[0.01] > 0.5
    assert result.correlation_with_baseline[0.1] > 0.3
