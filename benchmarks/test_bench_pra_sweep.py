"""The PRA sweep itself: performance runs plus both tournaments.

The per-figure benchmarks reuse the session-wide bench-scale sweep; this
benchmark measures the sweep machinery end-to-end on a smaller protocol
sample so the cost of the tournament engine is tracked explicitly.
"""

from __future__ import annotations

from repro.core.pra import PRAConfig
from repro.core.space import DesignSpace
from repro.core.study import PRAStudy
from repro.experiments import base
from repro.sim.config import SimulationConfig


def test_pra_sweep_small_sample(benchmark):
    space = DesignSpace.default()
    protocols = space.sample(10, seed=3, include=base.named_protocols())
    config = PRAConfig(
        sim=SimulationConfig(n_peers=12, rounds=30),
        performance_runs=1,
        encounter_runs=1,
        seed=3,
    )

    def sweep():
        PRAStudy.clear_memo()
        return PRAStudy(protocols, config).run(use_cache=False)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(result) == 10
    assert max(result.performance.values()) == 1.0
    assert all(0.0 <= v <= 1.0 for v in result.robustness.values())
