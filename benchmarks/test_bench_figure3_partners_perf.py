"""Figure 3: Performance histograms for different numbers of partners."""

from __future__ import annotations

from repro.experiments import figure3


def test_figure3_partner_performance_histogram(benchmark, bench_study):
    result = benchmark(figure3.from_study, bench_study)
    print()
    print(figure3.render(result))

    assert result.measure == "performance"
    assert len(result.matrix) == 10 and len(result.matrix[0]) == 10
    for row in result.matrix:
        assert abs(sum(row) - 1.0) < 1e-9 or sum(row) == 0.0
    assert 0.0 <= result.mean_partners_top <= 9.0
