"""Figure 6: robustness per resource-allocation policy."""

from __future__ import annotations

from repro.experiments import figure6


def test_figure6_robustness_by_allocation(benchmark, bench_study):
    result = benchmark(figure6.from_study, bench_study)
    print()
    print(figure6.render(result))

    assert set(result.points) == {"R1", "R2", "R3"}
    # Paper: Freeride (R3) protocols are far less robust than Equal Split.
    assert result.group_means["R3"] < result.group_means["R1"]
