"""Figure 10: homogeneous-swarm performance of the five client variants."""

from __future__ import annotations

from repro.experiments import figure10


def test_figure10_homogeneous_swarms(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        figure10.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(figure10.render(result))

    assert set(result.summaries) == set(figure10.VARIANT_ORDER)
    for name in figure10.VARIANT_ORDER:
        assert result.completion[name] == 1.0
    # Paper: the Random-ranking client performs about as well as the reference
    # BitTorrent client in a homogeneous swarm.
    bt = result.mean_download_time("BitTorrent")
    random_variant = result.mean_download_time("Random")
    assert abs(random_variant - bt) / bt < 0.35
