"""Section 2.2: the analytical expected-game-win model over bandwidth classes."""

from __future__ import annotations

from repro.experiments import section2_analytic


def test_section2_expected_wins(benchmark):
    result = benchmark(section2_analytic.run)
    print()
    print(section2_analytic.render(result))

    # Wherever the model assumptions hold (enough faster peers above the
    # class, i.e. NA > Ur), a homogeneous Birds swarm gives its peers more
    # expected wins than a homogeneous BitTorrent swarm does — the Section 2.3
    # observation that motivates the Birds variant.  The fastest class has no
    # peers above it, so the comparison does not apply there.
    for row in result.homogeneous_rows:
        if row["NA"] > result.regular_unchoke_slots:
            assert row["birds_total"] > row["bt_total"]
