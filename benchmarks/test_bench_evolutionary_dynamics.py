"""Ablation: imitation dynamics as a dynamic counterpart of the Nash analysis.

The Appendix shows analytically that a BitTorrent deviant does not gain in a
Birds swarm while freeriding strategies are exploitable.  This benchmark runs
the imitation dynamics on the cycle simulator and checks the dynamic
analogues: cooperative protocols drive out freeriders, and the reference
protocol retains its majority against a small freerider invasion.
"""

from __future__ import annotations

from repro.core.evolution import EvolutionConfig, ImitationDynamics, is_evolutionarily_stable
from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


def _freerider() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )


def test_imitation_dynamics_drive_out_freeriders(benchmark):
    config = EvolutionConfig(
        sim=SimulationConfig(n_peers=20, rounds=40),
        generations=10,
        imitation_rate=0.5,
        mutation_rate=0.0,
        seed=3,
    )

    def run():
        return ImitationDynamics(
            [bittorrent_reference(), loyal_when_needed(), _freerider()], config
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    final = result.final_shares()
    print()
    print("final shares:", {k: round(v, 2) for k, v in final.items()})

    assert final[_freerider().key] < 1.0 / 3.0
    assert result.dominant_protocol() != _freerider().key


def test_reference_protocol_resists_freerider_invasion(benchmark):
    config = EvolutionConfig(
        sim=SimulationConfig(n_peers=20, rounds=40),
        generations=8,
        imitation_rate=0.5,
        mutation_rate=0.0,
        seed=4,
    )

    stable = benchmark.pedantic(
        is_evolutionarily_stable,
        args=(bittorrent_reference(), _freerider(), config),
        rounds=1,
        iterations=1,
    )
    assert stable
