"""Population-engine benchmark: fixed, reference, fast and vec engines.

Times up to four engines on matched ``(n_peers, rounds)`` workloads:

* the optimised **fixed-population** engine
  (:class:`repro.sim.engine.Simulation`) on the legacy replacement-churn
  twin of the workload — the ceiling the variable engine is chasing;
* the **reference** variable-population engine
  (:class:`repro.sim.population.PopulationSimulation`);
* the optimised variable-population engine
  (:class:`repro.sim.population_fast.FastPopulationSimulation`);
* the numpy batch engine
  (:class:`repro.sim.population_vec.VecSimulation`) — statistically
  equivalent rather than bit-identical, gated by ``tests/statistical/``.

The variable workload is the ``whitewash-churn`` scenario's dynamics at
full strength (4% true departures per round, 90% of them re-entering under
fresh identities), the hardest steady case for incremental structures:
membership changes almost every round.

Engines are selected per case size: the reference engine drops out beyond
a few hundred peers and everything but vec drops out at the 10k scale tier
(timing a pure-python engine for minutes would measure patience, not
progress).  Every case that times both variable replica engines also
re-asserts their bit-identity — a speedup measured on diverging results
would be meaningless.  The vec engine is exempt from that check by design;
its gate is the distributional harness.

Results are **appended** to ``BENCH_population.json`` at the repository
root: one entry per (commit, grid), each a machine-readable record (config,
seconds, rounds/sec, speedups).  Re-running on the same commit replaces
that commit's entry; running on a new commit appends — the file itself
carries the tracked perf trajectory rather than being overwritten per run.
Legacy single-run files migrate automatically.

Vec runs are profiled (the profiler's per-round cost is unmeasurable at
bench scales), so every trajectory entry carries the per-phase breakdown
of its best run; the standalone runner compares fresh numbers against the
previous same-grid entry and prints those breakdowns when a case regresses.

Run the full bench grid (the acceptance gate asserts >= 2x fast-vs-
reference on the 200-peer/400-round headline case) plus the scale grids
(>= 3x vec-vs-fast at 1000 peers, 10k- and 100k-peer floors)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_population.py -s

or standalone, e.g. the tiny CI perf-smoke grid::

    PYTHONPATH=src python benchmarks/test_bench_population.py --grid smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import bittorrent_reference
from repro.runner.jobs import result_to_payload
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.engine import Simulation
from repro.sim.population import PopulationSimulation
from repro.sim.population_fast import FastPopulationSimulation
from repro.sim.population_vec import VecSimulation
from repro.sim.profiling import payload_seconds, render_phases

#: (n_peers, rounds) grids; "bench" ends with the acceptance headline case,
#: "scale" carries the 1k/10k swarm tier that only the vec engine can hold,
#: and "scale-100k" the 100k-peer tier the chunked-history kernels unlock.
GRIDS: Dict[str, List[Tuple[int, int]]] = {
    "smoke": [(30, 40), (50, 60)],
    "bench": [(50, 200), (100, 300), (200, 400)],
    "scale": [(1000, 60), (10000, 20)],
    "scale-100k": [(100_000, 5)],
}

#: The acceptance-gated case: 200 peers, 400 rounds of whitewash churn.
HEADLINE_CASE = (200, 400)

#: Minimum fast-vs-reference speedup required on the headline case.
HEADLINE_SPEEDUP_FLOOR = 2.0

#: The vec acceptance case: 1000 peers, 60 rounds of whitewash churn.
VEC_HEADLINE_CASE = (1000, 60)

#: Minimum vec-vs-fast speedup on the vec headline case.  Measured ~17x
#: with the partial-selection kernels; the gate sits well below that so
#: shared-runner noise cannot flake it.
VEC_SPEEDUP_FLOOR = 3.0

#: Absolute floors for the vec-only tiers.  Measured ~72 r/s at 10k and
#: ~5 r/s at 100k on the reference machine; the gates sit far below so a
#: slow shared runner cannot flake them, while the trajectory entries in
#: ``BENCH_population.json`` carry the real numbers.
VEC_10K_RPS_FLOOR = 30.0
VEC_100K_RPS_FLOOR = 2.0

#: A case regresses when its rounds/sec fall below this fraction of the
#: previous same-grid trajectory entry; the standalone runner then prints
#: the stored per-phase breakdowns so the regression is attributable.
REGRESSION_RATIO = 0.85

#: Above this population only the vec engine is timed.
VEC_ONLY_MIN_PEERS = 2000

#: Above this population the pure-python reference engine is skipped.
REFERENCE_MAX_PEERS = 500

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_population.json"

#: Whitewash-churn dynamics at scenario strength (see the registry entry).
WHITEWASH_DEPARTURE_RATE = 0.04
WHITEWASH_REJOIN_RATE = 0.9

ENGINE_ORDER = ("fixed", "population_reference", "population_fast", "population_vec")


def _whitewash_config(n_peers: int, rounds: int) -> SimulationConfig:
    return SimulationConfig(
        n_peers=n_peers,
        rounds=rounds,
        population=PopulationDynamics(
            arrival=ArrivalProcess(kind="whitewash", rate=WHITEWASH_REJOIN_RATE),
            departure=DepartureProcess(rate=WHITEWASH_DEPARTURE_RATE),
        ),
    )


def _fixed_twin_config(n_peers: int, rounds: int) -> SimulationConfig:
    """The fixed-population twin: same size, legacy replacement churn."""
    return SimulationConfig(
        n_peers=n_peers, rounds=rounds, churn_rate=WHITEWASH_DEPARTURE_RATE
    )


def engines_for_case(n_peers: int) -> Tuple[str, ...]:
    """Which engines a case of ``n_peers`` can afford to time."""
    if n_peers >= VEC_ONLY_MIN_PEERS:
        return ("population_vec",)
    if n_peers > REFERENCE_MAX_PEERS:
        return ("fixed", "population_fast", "population_vec")
    return ENGINE_ORDER


def _time_run(factory, repeats: int = 3) -> Tuple[float, object, object]:
    """Best-of-``repeats`` wall-clock seconds for one full run.

    Returns ``(seconds, result, simulation)`` of the best repeat, so a
    profiled engine's phase table can be read off the winning run.
    """
    best = float("inf")
    result = None
    best_sim = None
    for _ in range(repeats):
        start = time.perf_counter()
        simulation = factory()
        run_result = simulation.run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result, best_sim = elapsed, run_result, simulation
    return best, result, best_sim


def run_case(
    n_peers: int,
    rounds: int,
    seed: int = 0,
    repeats: int = 3,
    engines: Optional[Tuple[str, ...]] = None,
) -> dict:
    """Benchmark the selected engines on one matched configuration."""
    if engines is None:
        engines = engines_for_case(n_peers)
    behavior = bittorrent_reference().behavior
    variable_config = _whitewash_config(n_peers, rounds)
    fixed_config = _fixed_twin_config(n_peers, rounds)

    factories = {
        "fixed": lambda: Simulation(fixed_config, [behavior], seed=seed),
        "population_reference": lambda: PopulationSimulation(
            variable_config, [behavior], seed=seed
        ),
        "population_fast": lambda: FastPopulationSimulation(
            variable_config, [behavior], seed=seed
        ),
        # Profiled: the real profiler's per-round cost is a few perf_counter
        # calls, unmeasurable at these scales, and it buys every trajectory
        # entry a per-phase attribution of the vec time.
        "population_vec": lambda: VecSimulation(
            variable_config, [behavior], seed=seed, profile=True
        ),
    }
    timings: Dict[str, float] = {}
    results: Dict[str, object] = {}
    sims: Dict[str, object] = {}
    for name in engines:
        timings[name], results[name], sims[name] = _time_run(
            factories[name], repeats
        )

    case = {
        "config": {
            "n_peers": n_peers,
            "rounds": rounds,
            "seed": seed,
            "workload": "whitewash-churn",
            "departure_rate": WHITEWASH_DEPARTURE_RATE,
            "whitewash_rate": WHITEWASH_REJOIN_RATE,
        },
        "engines": {
            name: {
                "seconds": round(seconds, 4),
                "rounds_per_sec": round(rounds / seconds, 1),
            }
            for name, seconds in timings.items()
        },
    }
    if "population_vec" in timings:
        case["engines"]["population_vec"]["profile"] = sims[
            "population_vec"
        ].profiler.as_payload(rounds)
    if {"population_reference", "population_fast"} <= timings.keys():
        case["speedup_fast_vs_reference"] = round(
            timings["population_reference"] / timings["population_fast"], 2
        )
        case["bit_identical"] = result_to_payload(
            results["population_fast"]
        ) == result_to_payload(results["population_reference"])
    if {"population_fast", "population_vec"} <= timings.keys():
        case["speedup_vec_vs_fast"] = round(
            timings["population_fast"] / timings["population_vec"], 2
        )
    return case


def current_commit() -> Optional[str]:
    """The commit this run measures (CI env, then git; ``None`` if unknown)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_grid(grid: str, repeats: int = 3) -> dict:
    """Benchmark every case of ``grid`` into one trajectory entry."""
    cases = [run_case(n, rounds, repeats=repeats) for n, rounds in GRIDS[grid]]
    return {
        "commit": current_commit(),
        "grid": grid,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }


def load_history(output: Path) -> dict:
    """The trajectory stored at ``output`` (empty or legacy files migrate).

    The pre-trajectory layout was a single run's payload with top-level
    ``cases``; it becomes the first entry, with an unknown commit.
    """
    if not output.exists():
        return {"benchmark": "population-engines", "entries": []}
    data = json.loads(output.read_text(encoding="utf-8"))
    if "entries" in data:
        return data
    legacy = {key: data[key] for key in ("grid", "python", "machine", "cases")}
    legacy["commit"] = data.get("commit")
    return {
        "benchmark": data.get("benchmark", "population-engines"),
        "entries": [legacy],
    }


def append_entry(entry: dict, output: Path) -> dict:
    """Append ``entry`` to the trajectory at ``output`` (keyed by commit).

    An existing entry for the same (commit, grid) is replaced — re-running
    on one commit refreshes its measurement instead of duplicating it — and
    anything else is preserved, so the file accumulates one entry per
    benchmarked commit.  Returns the written trajectory.
    """
    history = load_history(output)
    key = (entry.get("commit"), entry["grid"])
    history["entries"] = [
        existing
        for existing in history["entries"]
        if (existing.get("commit"), existing["grid"]) != key
    ]
    history["entries"].append(entry)
    output.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return history


def previous_grid_entry(history: dict, grid: str) -> Optional[dict]:
    """The latest stored trajectory entry for ``grid`` (``None`` if first)."""
    entries = [e for e in history["entries"] if e["grid"] == grid]
    return entries[-1] if entries else None


def detect_regressions(
    previous: dict, payload: dict, ratio: float = REGRESSION_RATIO
) -> List[dict]:
    """Cases whose rounds/sec fell below ``ratio`` x the previous entry.

    Each finding carries the current and previous stored phase payloads
    (when the engine records them), so the caller can print an attributable
    per-phase breakdown instead of a bare number.
    """
    prev_cases = {
        (c["config"]["n_peers"], c["config"]["rounds"]): c
        for c in previous["cases"]
    }
    regressions: List[dict] = []
    for case in payload["cases"]:
        key = (case["config"]["n_peers"], case["config"]["rounds"])
        prev = prev_cases.get(key)
        if prev is None:
            continue
        for name, timing in case["engines"].items():
            prev_timing = prev["engines"].get(name)
            if not prev_timing:
                continue
            if timing["rounds_per_sec"] < ratio * prev_timing["rounds_per_sec"]:
                regressions.append(
                    {
                        "case": key,
                        "engine": name,
                        "previous_rps": prev_timing["rounds_per_sec"],
                        "current_rps": timing["rounds_per_sec"],
                        "profile": timing.get("profile"),
                        "previous_profile": prev_timing.get("profile"),
                    }
                )
    return regressions


def _print_regressions(regressions: List[dict]) -> None:
    for reg in regressions:
        n_peers, rounds = reg["case"]
        print(
            f"REGRESSION: {reg['engine']} on {n_peers} peers x {rounds} "
            f"rounds: {reg['previous_rps']} -> {reg['current_rps']} r/s"
        )
        for label, profile in (
            ("current", reg["profile"]),
            ("previous", reg["previous_profile"]),
        ):
            if profile:
                print(f"  {label} per-phase breakdown:")
                print(
                    render_phases(
                        payload_seconds(profile),
                        rounds=profile.get("rounds"),
                        indent="  ",
                    )
                )


def _render(payload: dict) -> str:
    commit = payload.get("commit") or "unknown"
    lines = [
        f"commit {commit[:12]}  grid {payload['grid']}",
        f"{'peers':>6} {'rounds':>6} {'fixed r/s':>10} {'ref r/s':>10} "
        f"{'fast r/s':>10} {'vec r/s':>10} {'fast/ref':>9} {'vec/fast':>9} "
        f"{'identical':>9}"
    ]
    for case in payload["cases"]:
        config = case["config"]
        engines = case["engines"]

        def rps(name: str) -> str:
            timing = engines.get(name)
            return f"{timing['rounds_per_sec']:.1f}" if timing else "-"

        fast_ref = case.get("speedup_fast_vs_reference")
        vec_fast = case.get("speedup_vec_vs_fast")
        identical = case.get("bit_identical")
        lines.append(
            f"{config['n_peers']:>6} {config['rounds']:>6} "
            f"{rps('fixed'):>10} {rps('population_reference'):>10} "
            f"{rps('population_fast'):>10} {rps('population_vec'):>10} "
            f"{f'{fast_ref:.2f}x' if fast_ref is not None else '-':>9} "
            f"{f'{vec_fast:.2f}x' if vec_fast is not None else '-':>9} "
            f"{str(identical) if identical is not None else '-':>9}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# pytest entry points (bench grid + acceptance gates)
# ---------------------------------------------------------------------- #
def test_population_engines_bench_grid():
    payload = run_grid("bench")
    history = append_entry(payload, DEFAULT_OUTPUT)
    print()
    print(_render(payload))
    print(
        f"wrote {DEFAULT_OUTPUT} "
        f"({len(history['entries'])} trajectory entries)"
    )

    assert all(
        case["bit_identical"]
        for case in payload["cases"]
        if "bit_identical" in case
    )
    headline = next(
        case
        for case in payload["cases"]
        if (case["config"]["n_peers"], case["config"]["rounds"]) == HEADLINE_CASE
    )
    assert headline["speedup_fast_vs_reference"] >= HEADLINE_SPEEDUP_FLOOR, (
        f"fast variable-population engine must be >= "
        f"{HEADLINE_SPEEDUP_FLOOR}x the reference on "
        f"{HEADLINE_CASE[0]} peers / {HEADLINE_CASE[1]} rounds, got "
        f"{headline['speedup_fast_vs_reference']}x"
    )


def test_vec_engine_scale_grid():
    """The 1k/10k swarm tier: vec must beat fast at 1k and hold 10k."""
    payload = run_grid("scale")
    history = append_entry(payload, DEFAULT_OUTPUT)
    print()
    print(_render(payload))
    print(
        f"wrote {DEFAULT_OUTPUT} "
        f"({len(history['entries'])} trajectory entries)"
    )

    headline = next(
        case
        for case in payload["cases"]
        if (case["config"]["n_peers"], case["config"]["rounds"])
        == VEC_HEADLINE_CASE
    )
    assert headline["speedup_vec_vs_fast"] >= VEC_SPEEDUP_FLOOR, (
        f"vec engine must be >= {VEC_SPEEDUP_FLOOR}x the fast engine on "
        f"{VEC_HEADLINE_CASE[0]} peers / {VEC_HEADLINE_CASE[1]} rounds, got "
        f"{headline['speedup_vec_vs_fast']}x"
    )
    ten_k = next(
        case for case in payload["cases"] if case["config"]["n_peers"] >= 10_000
    )
    assert (
        ten_k["engines"]["population_vec"]["rounds_per_sec"]
        >= VEC_10K_RPS_FLOOR
    ), (
        f"vec engine must hold >= {VEC_10K_RPS_FLOOR} rounds/sec on the "
        f"10k-peer tier, got "
        f"{ten_k['engines']['population_vec']['rounds_per_sec']}"
    )
    # 10k is vec-only: no other engine may sneak into (and stall) the tier.
    assert set(ten_k["engines"]) == {"population_vec"}


def test_vec_engine_scale_100k_grid():
    """The 100k-peer tier the chunked-history kernels unlock."""
    payload = run_grid("scale-100k")
    history = append_entry(payload, DEFAULT_OUTPUT)
    print()
    print(_render(payload))
    print(
        f"wrote {DEFAULT_OUTPUT} "
        f"({len(history['entries'])} trajectory entries)"
    )

    (case,) = payload["cases"]
    assert set(case["engines"]) == {"population_vec"}
    vec = case["engines"]["population_vec"]
    assert vec["rounds_per_sec"] >= VEC_100K_RPS_FLOOR, (
        f"vec engine must hold >= {VEC_100K_RPS_FLOOR} rounds/sec on the "
        f"100k-peer tier, got {vec['rounds_per_sec']}"
    )
    # Every trajectory entry carries the phase attribution of its best run.
    assert set(vec["profile"]["phases"]) >= {"decision", "transfer"}


# ---------------------------------------------------------------------- #
# standalone entry point (CI perf-smoke)
# ---------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", default="bench", choices=sorted(GRIDS))
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, metavar="FILE"
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    previous = previous_grid_entry(load_history(args.output), args.grid)
    payload = run_grid(args.grid, repeats=args.repeats)
    history = append_entry(payload, args.output)
    print(_render(payload))
    print(f"wrote {args.output} ({len(history['entries'])} trajectory entries)")
    if previous is not None:
        # Attributable, not blocking: shared-runner noise makes absolute
        # wall-clock gates flake, so a slowdown prints its phase breakdown
        # (which phase grew) and leaves the verdict to the reader.
        _print_regressions(detect_regressions(previous, payload))
    if not all(
        case["bit_identical"]
        for case in payload["cases"]
        if "bit_identical" in case
    ):
        print("ERROR: engines diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
