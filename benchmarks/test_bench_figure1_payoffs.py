"""Figure 1: payoff matrices, dominance and equilibria of the two games."""

from __future__ import annotations

from repro.experiments import figure1


def test_figure1_payoff_analysis(benchmark):
    result = benchmark(figure1.run)
    print()
    print(figure1.render(result))

    # Paper: fast defects / slow cooperates under (a); both defect under (c).
    assert result.dominance["bittorrent_dilemma"] == {"fast": "D", "slow": "C"}
    assert result.dominance["birds"] == {"fast": "D", "slow": "D"}
    assert ("D", "D") in result.equilibria["birds"]
