"""Figure 9(b): Birds vs BitTorrent swarm encounters."""

from __future__ import annotations

from repro.bittorrent.variants import birds_client, reference_bittorrent
from repro.experiments import figure9


def test_figure9b_birds_vs_bittorrent(benchmark, bench_scale, bench_seed):
    panel = benchmark.pedantic(
        figure9.run_panel,
        args=(birds_client(), reference_bittorrent(), "b"),
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(figure9.render(figure9.Figure9Result(panels={"b": panel}, runs_per_point=3)))

    # All-Birds and all-BitTorrent swarms both complete; their average
    # download times are of the same order (the paper finds the all-Birds
    # swarm significantly faster; see EXPERIMENTS.md for the measured gap).
    all_bt = panel.points[0].mean_time["BitTorrent"]
    all_birds = panel.points[-1].mean_time["Birds"]
    assert all_bt > 0 and all_birds > 0
    assert all_birds < all_bt * 1.3
