"""Ablation: heuristic design-space exploration vs. an exhaustive scan.

The paper's future-work section proposes heuristic exploration for design
spaces too large to scan.  This benchmark runs hill climbing and evolutionary
search over the full 3270-protocol space with a small evaluation budget and
checks that the discovered protocols are sensible (cooperative, competitive
objective scores), tracking the cost of a budgeted search run.
"""

from __future__ import annotations

from repro.core.pra import PRAConfig
from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed
from repro.core.search import EvolutionarySearch, HillClimbingSearch, SearchObjective
from repro.core.space import DesignSpace
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


def _objective() -> SearchObjective:
    freerider = Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )
    config = PRAConfig(
        sim=SimulationConfig(n_peers=12, rounds=25),
        performance_runs=1,
        encounter_runs=1,
        seed=7,
    )
    return SearchObjective(
        [bittorrent_reference(), loyal_when_needed(), freerider], config
    )


def test_hill_climbing_search(benchmark):
    space = DesignSpace.default()

    def search():
        objective = _objective()
        return HillClimbingSearch(
            space, objective, max_evaluations=40, restarts=2, seed=1
        ).run(start=bittorrent_reference())

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    print()
    print(f"hill climbing best: {result.best_protocol.label} score={result.best_score:.3f} "
          f"({result.evaluations} evaluations)")

    assert result.evaluations <= 40
    # A budgeted search should never end on a protocol that uploads nothing.
    assert not result.best_protocol.behavior.uploads_nothing
    assert result.best_score >= 0.5


def test_evolutionary_search(benchmark):
    space = DesignSpace.default()

    def search():
        objective = _objective()
        return EvolutionarySearch(
            space, objective, population_size=6, generations=3, elite=2,
            max_evaluations=40, seed=2,
        ).run(initial_population=[bittorrent_reference(), loyal_when_needed()])

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    print()
    print(f"evolutionary best: {result.best_protocol.label} score={result.best_score:.3f} "
          f"({result.evaluations} evaluations)")

    assert result.evaluations <= 40
    assert not result.best_protocol.behavior.uploads_nothing
