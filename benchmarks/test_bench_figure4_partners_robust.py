"""Figure 4: Robustness histograms for different numbers of partners."""

from __future__ import annotations

from repro.experiments import figure4


def test_figure4_partner_robustness_histogram(benchmark, bench_study):
    result = benchmark(figure4.from_study, bench_study)
    print()
    print(figure4.render(result))

    assert result.measure == "robustness"
    assert len(result.matrix) == 10
    # Paper: highly robust protocols maintain many partners; at bench scale we
    # only require the summary to be well-formed and the top group to not be
    # dominated by the degenerate zero-partner protocols.
    assert result.mean_partners_top >= 1.0
