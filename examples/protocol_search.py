#!/usr/bin/env python
"""Heuristic protocol design: searching the design space instead of scanning it.

The paper's future-work section asks for a solution concept that explores the
design space heuristically when an exhaustive PRA scan (3270 protocols,
cluster-scale) is infeasible.  This example demonstrates the two searchers
shipped with the library:

* random-restart hill climbing over the one-step protocol neighbourhood, and
* a small evolutionary search with crossover and mutation,

both optimising a weighted performance/robustness objective evaluated against
a fixed opponent panel (reference BitTorrent, Loyal-When-needed and a
freerider).  It finishes in about a minute with the defaults; shrink
``--budget`` for a faster demonstration.

Run::

    python examples/protocol_search.py
    python examples/protocol_search.py --budget 30 --algorithm hill
    python examples/protocol_search.py --robustness-weight 2.0
"""

from __future__ import annotations

import argparse

from repro.core import (
    DesignSpace,
    EvolutionarySearch,
    HillClimbingSearch,
    PRAConfig,
    SearchObjective,
    bittorrent_reference,
    loyal_when_needed,
)
from repro.core.protocol import Protocol
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithm", choices=("hill", "evolutionary", "both"), default="both")
    parser.add_argument("--budget", type=int, default=60,
                        help="maximum number of protocol evaluations per algorithm")
    parser.add_argument("--peers", type=int, default=16, help="peers per evaluation run")
    parser.add_argument("--rounds", type=int, default=40, help="rounds per evaluation run")
    parser.add_argument("--performance-weight", type=float, default=1.0)
    parser.add_argument("--robustness-weight", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def make_objective(args: argparse.Namespace) -> SearchObjective:
    freerider = Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )
    config = PRAConfig(
        sim=SimulationConfig(n_peers=args.peers, rounds=args.rounds),
        performance_runs=1,
        encounter_runs=1,
        seed=args.seed,
    )
    return SearchObjective(
        [bittorrent_reference(), loyal_when_needed(), freerider],
        config,
        performance_weight=args.performance_weight,
        robustness_weight=args.robustness_weight,
    )


def report(name: str, result) -> None:
    value = result.best_value
    print(f"{name}: best protocol {result.best_protocol.label}")
    print(f"  score={value.score:.3f}  performance={value.performance:.3f} "
          f"robustness={value.robustness:.3f}  ({result.evaluations} evaluations)")


def main() -> None:
    args = parse_args()
    space = DesignSpace.default()

    if args.algorithm in ("hill", "both"):
        objective = make_objective(args)
        search = HillClimbingSearch(
            space, objective, max_evaluations=args.budget, restarts=2, seed=args.seed
        )
        report("Hill climbing", search.run(start=bittorrent_reference()))

    if args.algorithm in ("evolutionary", "both"):
        objective = make_objective(args)
        search = EvolutionarySearch(
            space, objective, population_size=6, generations=4, elite=2,
            max_evaluations=args.budget, seed=args.seed,
        )
        report(
            "Evolutionary search",
            search.run(initial_population=[bittorrent_reference(), loyal_when_needed()]),
        )

    print()
    print("Reference point: the named protocols evaluated with the same objective")
    objective = make_objective(args)
    for protocol in (bittorrent_reference(), loyal_when_needed()):
        value = objective.evaluate(protocol)
        print(f"  {protocol.name:18s} score={value.score:.3f} "
              f"(P={value.performance:.3f}, R={value.robustness:.3f})")


if __name__ == "__main__":
    main()
