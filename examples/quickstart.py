#!/usr/bin/env python
"""Quickstart: Design Space Analysis in a few lines.

This example walks through the core workflow of the library:

1. build the actualized P2P file-swarming design space of Section 4.2
   (3270 protocols),
2. sample a tractable subset (always including the named protocols the paper
   tracks: reference BitTorrent, Birds, Loyal-When-needed, Sort-S),
3. run the PRA quantification — Performance, Robustness, Aggressiveness —
   on the cycle-based simulator, and
4. inspect the resulting scores and protocol ranks.

Run time is a few seconds with the default (small) settings::

    python examples/quickstart.py
    python examples/quickstart.py --protocols 24 --peers 20 --rounds 80
"""

from __future__ import annotations

import argparse

from repro.core import (
    DesignSpace,
    PRAConfig,
    PRAStudy,
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    sort_s,
)
from repro.sim.config import SimulationConfig
from repro.stats.tables import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocols", type=int, default=16,
                        help="number of protocols to sample from the design space")
    parser.add_argument("--peers", type=int, default=16, help="peers per simulation")
    parser.add_argument("--rounds", type=int, default=50, help="rounds per simulation")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # 1. The full design space of the paper (Section 4.2).
    space = DesignSpace.default()
    print(f"Design space: {space!r}\n")

    # 2. A stratified sample that still covers every actualization, anchored
    #    with the named protocols so their ranks can be reported.
    named = [bittorrent_reference(), birds_protocol(), loyal_when_needed(), sort_s()]
    protocols = space.sample(args.protocols, seed=args.seed, include=named)

    # 3. The PRA quantification on the cycle-based simulator.
    config = PRAConfig(
        sim=SimulationConfig(n_peers=args.peers, rounds=args.rounds),
        performance_runs=2,
        encounter_runs=1,
        seed=args.seed,
    )
    study = PRAStudy(protocols, config).run()

    # 4. Results: per-protocol PRA scores, best protocols, named-protocol ranks.
    rows = sorted(study.rows(), key=lambda r: r["robustness"], reverse=True)
    print(
        format_table(
            ("protocol", "P", "R", "A", "k", "h"),
            [
                (r["label"], r["performance"], r["robustness"], r["aggressiveness"],
                 r["k"], r["h"])
                for r in rows
            ],
            title="PRA scores (sorted by Robustness)",
        )
    )

    print()
    print("Named protocols:")
    for protocol in named:
        key = next(p.key for p in study.protocols if p.name == protocol.name)
        performance, robustness, aggressiveness = study.scores_of(key)
        print(
            f"  {protocol.name:18s} P={performance:.2f} (rank "
            f"{study.rank_of(key, 'performance')}), R={robustness:.2f} (rank "
            f"{study.rank_of(key, 'robustness')}), A={aggressiveness:.2f}"
        )

    print()
    print(
        "Robustness/Aggressiveness correlation over the sample: "
        f"{study.robustness_aggressiveness_correlation():.2f}"
    )


if __name__ == "__main__":
    main()
