#!/usr/bin/env python
"""Section 2 walk-through: BitTorrent as a strategy in a repeated game.

This example reproduces the game-theoretic analysis of the paper without any
large simulation:

* the BitTorrent Dilemma payoff matrix (Figure 1a) and its dominance
  structure — the fast peer defects, the slow peer cooperates;
* the modified Birds payoffs (Figure 1c) where defection is dominant for
  both classes;
* iterated-game intuition: a small Axelrod-style tournament showing why
  Tit-for-Tat-like reciprocation is attractive in repeated settings;
* the analytical expected-game-win model of Section 2.2 over a multi-class
  swarm, and the Appendix deviation analysis proving that BitTorrent is not
  a Nash equilibrium under this abstraction while Birds is.

Run::

    python examples/nash_analysis.py
    python examples/nash_analysis.py --peers 100 --unchoke-slots 5
"""

from __future__ import annotations

import argparse

from repro.experiments import figure1, section2_analytic
from repro.gametheory import (
    AxelrodTournament,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    SwarmModel,
    TitForTat,
    TitForTwoTats,
    piatek_classes,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", type=float, default=100.0, help="fast peer upload speed")
    parser.add_argument("--slow", type=float, default=25.0, help="slow peer upload speed")
    parser.add_argument("--peers", type=int, default=50, help="swarm size for the analytical model")
    parser.add_argument("--unchoke-slots", type=int, default=4, help="regular unchoke slots (Ur)")
    parser.add_argument("--rounds", type=int, default=200, help="rounds per iterated match")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # --- Figure 1: the stage games --------------------------------------- #
    print(figure1.render(figure1.run(args.fast, args.slow)))
    print()

    # --- Repeated-game intuition: an Axelrod-style tournament ------------- #
    strategies = [
        TitForTat(), TitForTwoTats(), AlwaysCooperate(), AlwaysDefect(),
        GrimTrigger(), Pavlov(),
    ]
    tournament = AxelrodTournament(strategies, rounds=args.rounds, repetitions=1, seed=1)
    ranking = tournament.play().ranking()
    print("Axelrod-style iterated Prisoner's Dilemma tournament (average score per round):")
    for name, score in ranking:
        print(f"  {name:10s} {score:.3f}")
    print()

    # --- Section 2.2 analytical model and Appendix verdicts --------------- #
    population = piatek_classes(args.peers)
    result = section2_analytic.run(population, regular_unchoke_slots=args.unchoke_slots)
    print(section2_analytic.render(result))

    model = SwarmModel(population, regular_unchoke_slots=args.unchoke_slots)
    print()
    print("Per-class deviation advantages (positive = deviating pays):")
    for index, cls in enumerate(population):
        if model.assumption_violations(index):
            print(f"  class {cls.name:8s}: model assumptions not satisfied, skipped")
            continue
        birds_dev = model.birds_deviant_in_bittorrent_swarm(index)
        bt_dev = model.bittorrent_deviant_in_birds_swarm(index)
        print(
            f"  class {cls.name:8s}: Birds deviant in BT swarm {birds_dev.advantage:+.3f}, "
            f"BT deviant in Birds swarm {bt_dev.advantage:+.3f}"
        )


if __name__ == "__main__":
    main()
