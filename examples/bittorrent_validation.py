#!/usr/bin/env python
"""Swarm validation: DSA-discovered protocols in a piece-level BitTorrent swarm.

This example reproduces the Section 5 validation experiments on the simulated
swarm substrate:

* homogeneous swarms for the five client variants (Figure 10), and
* competitive encounters between two variants across population mixes
  (Figure 9), for any pair chosen on the command line.

Run::

    python examples/bittorrent_validation.py                      # Figure 10
    python examples/bittorrent_validation.py --pair birds bittorrent
    python examples/bittorrent_validation.py --pair loyal-when-needed birds --runs 5
"""

from __future__ import annotations

import argparse

from repro.bittorrent import SwarmConfig, SwarmSimulation, variant_by_name
from repro.bittorrent.metrics import summarize_by_variant
from repro.stats.tables import format_table
from repro.utils.rng import derive_seed


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", nargs=2, metavar=("VARIANT_A", "VARIANT_B"), default=None,
                        help="run competitive encounters between two variants "
                             "(bittorrent, birds, loyal-when-needed, sort-s, random)")
    parser.add_argument("--leechers", type=int, default=50, help="number of leechers")
    parser.add_argument("--file-size-mb", type=float, default=5.0, help="content size")
    parser.add_argument("--runs", type=int, default=3, help="independent runs per data point")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    return parser.parse_args()


def homogeneous(config: SwarmConfig, runs: int, seed: int) -> None:
    """Figure-10-style comparison of homogeneous swarms."""
    rows = []
    for name in ("Sort-S", "Random", "Loyal-When-needed", "BitTorrent", "Birds"):
        variant = variant_by_name(name)
        results = [
            SwarmSimulation(config, [variant], seed=derive_seed(seed, f"homog/{name}/{i}")).run()
            for i in range(runs)
        ]
        stats = summarize_by_variant(results)[name]
        completion = sum(r.completion_fraction(name) for r in results) / runs
        rows.append((name, stats.mean, f"±{stats.ci_half_width:.1f}", completion))
    print(format_table(
        ("variant", "avg download time (s)", "95% CI", "completion"),
        rows,
        title=f"Homogeneous swarms ({config.n_leechers} leechers, {runs} runs per variant)",
    ))


def encounters(config: SwarmConfig, name_a: str, name_b: str, runs: int, seed: int) -> None:
    """Figure-9-style competitive encounters across population mixes."""
    variant_a, variant_b = variant_by_name(name_a), variant_by_name(name_b)
    rows = []
    for fraction in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        count_a = int(round(fraction * config.n_leechers))
        variants = [variant_a] * count_a + [variant_b] * (config.n_leechers - count_a)
        results = [
            SwarmSimulation(
                config, variants, seed=derive_seed(seed, f"mix/{fraction}/{i}")
            ).run()
            for i in range(runs)
        ]
        stats = summarize_by_variant(results)

        def cell(name: str) -> str:
            if name not in stats:
                return "-"
            return f"{stats[name].mean:.1f} ±{stats[name].ci_half_width:.1f}"

        rows.append((f"{fraction:g}", cell(variant_a.name), cell(variant_b.name)))
    print(format_table(
        (f"fraction {variant_a.name}", f"{variant_a.name} (s)", f"{variant_b.name} (s)"),
        rows,
        title=(
            f"Competitive encounters: {variant_a.name} vs {variant_b.name} "
            f"({config.n_leechers} leechers, {runs} runs per point)"
        ),
    ))


def main() -> None:
    args = parse_args()
    config = SwarmConfig.paper().with_(
        n_leechers=args.leechers, file_size_mb=args.file_size_mb
    )
    if args.pair is None:
        homogeneous(config, args.runs, args.seed)
    else:
        encounters(config, args.pair[0], args.pair[1], args.runs, args.seed)


if __name__ == "__main__":
    main()
