#!/usr/bin/env python
"""Design-space sweep: the Section 4 analysis on a configurable budget.

This example runs the full analysis pipeline behind Figures 2-8 and Table 3:

1. sample (or fully enumerate) the 3270-protocol design space,
2. run the PRA quantification (performance runs + robustness and
   aggressiveness tournaments),
3. print the figure-level summaries: the robustness/performance extremes,
   the per-dimension robustness breakdowns, the robustness/aggressiveness
   correlation, and the Table 3 regression,
4. optionally persist the raw study as JSON for later re-analysis.

The default budget finishes in a couple of minutes on a laptop; pass
``--scale paper`` (and a lot of patience or a big machine) for the full
3270-protocol sweep the paper ran on a cluster.

Run::

    python examples/design_space_sweep.py                 # bench scale
    python examples/design_space_sweep.py --scale smoke   # seconds
    python examples/design_space_sweep.py --output study.json
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import figure2, figure5, figure6, figure7, figure8, table3
from repro.experiments.pra_study import shared_pra_study
from repro.utils.logging import configure_logging


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"),
                        help="sweep budget (see repro.experiments.base)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--output", type=Path, default=None,
                        help="optional path to save the raw PRA study as JSON")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="optional directory for the on-disk study cache")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    configure_logging()

    study = shared_pra_study(args.scale, seed=args.seed, cache_dir=args.cache_dir)
    if args.output is not None:
        study.save(args.output)
        print(f"raw study written to {args.output}\n")

    print(figure2.render(figure2.from_study(study)))
    print()
    print(figure5.render(figure5.from_study(study)))
    print()
    print(figure6.render(figure6.from_study(study)))
    print()
    print(figure7.render(figure7.from_study(study)))
    print()
    print(figure8.render(figure8.from_study(study)))
    print()
    print(table3.render(table3.from_study(study)))


if __name__ == "__main__":
    main()
